"""Property tests: ``update_batch`` reaches the same state as repeated ``update``.

The batched ingestion path is only usable if it is *indistinguishable* from
the paper's update-at-a-time streaming model.  For the linear sketches that
means the counter state is identical; for the conservative-update variants it
means the batch is applied with index-order semantics, which (together with a
shared RNG sequence for CML-CU) again yields identical counters.

Deltas are integer-valued so every sum is exact in floating point and the
comparisons can be bitwise; with arbitrary reals the two paths agree only up
to summation order, which is not the invariant under test.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches.registry import available_sketches, make_sketch

DIMENSION = 96
WIDTH = 16
DEPTH = 3

#: every registered algorithm, bias-aware sketches included
ALL_ALGORITHMS = available_sketches()

#: algorithms rejecting negative increments (cash-register only)
CASH_REGISTER_ONLY = {"count_min_cu", "count_min_log_cu"}

#: state arrays compared between the two paths, where the sketch exposes them
STATE_ATTRIBUTES = ("table", "bias_buckets", "sample_values")

update_batches = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=DIMENSION - 1),
        st.integers(min_value=0, max_value=50),
    ),
    min_size=0,
    max_size=120,
)

seeds = st.integers(0, 2**31 - 1)


def _build_pair(algorithm, seed):
    scalar = make_sketch(algorithm, DIMENSION, WIDTH, DEPTH, seed=seed)
    batched = make_sketch(algorithm, DIMENSION, WIDTH, DEPTH, seed=seed)
    return scalar, batched


def _assert_same_state(scalar, batched):
    assert scalar.items_processed == batched.items_processed
    for attribute in STATE_ATTRIBUTES:
        if hasattr(scalar, attribute):
            np.testing.assert_array_equal(
                getattr(scalar, attribute),
                getattr(batched, attribute),
                err_msg=f"{type(scalar).__name__}.{attribute} diverged",
            )


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
@given(updates=update_batches, seed=seeds)
@settings(max_examples=25, deadline=None)
def test_update_batch_matches_scalar_replay(algorithm, updates, seed):
    """One update_batch call equals the same updates applied one at a time."""
    scalar, batched = _build_pair(algorithm, seed)
    for index, delta in updates:
        scalar.update(index, float(delta))
    indices = np.array([index for index, _ in updates], dtype=np.int64)
    deltas = np.array([delta for _, delta in updates], dtype=np.float64)
    batched.update_batch(indices, deltas)
    _assert_same_state(scalar, batched)


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
@given(updates=update_batches, seed=seeds, chunk=st.integers(1, 17))
@settings(max_examples=15, deadline=None)
def test_chunked_batches_match_one_batch(algorithm, updates, seed, chunk):
    """Splitting a batch into ordered chunks does not change the final state."""
    whole, chunked = _build_pair(algorithm, seed)
    indices = np.array([index for index, _ in updates], dtype=np.int64)
    deltas = np.array([delta for _, delta in updates], dtype=np.float64)
    whole.update_batch(indices, deltas)
    for start in range(0, len(updates), chunk):
        chunked.update_batch(
            indices[start:start + chunk], deltas[start:start + chunk]
        )
    _assert_same_state(whole, chunked)


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
@given(updates=update_batches, seed=seeds)
@settings(max_examples=15, deadline=None)
def test_query_batch_matches_scalar_queries(algorithm, updates, seed):
    """query_batch agrees with one query() call per coordinate."""
    sketch, _ = _build_pair(algorithm, seed)
    for index, delta in updates:
        sketch.update(index, float(delta))
    queried = np.arange(0, DIMENSION, 7, dtype=np.int64)
    batched = sketch.query_batch(queried)
    scalar = np.array([sketch.query(int(i)) for i in queried])
    # CML-CU decodes counters with scalar ** in query() and np.power in
    # query_batch(), which may differ in the last ulp; everything else is exact
    np.testing.assert_allclose(batched, scalar, rtol=1e-12, atol=0)


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_unit_deltas_default(algorithm):
    """update_batch(indices) defaults to unit increments."""
    scalar, batched = _build_pair(algorithm, 7)
    indices = np.array([3, 5, 3, 11, 5, 3], dtype=np.int64)
    for index in indices:
        scalar.update(int(index))
    batched.update_batch(indices)
    _assert_same_state(scalar, batched)


@pytest.mark.parametrize("algorithm", sorted(CASH_REGISTER_ONLY))
def test_conservative_batch_rejects_negative_deltas(algorithm):
    sketch = make_sketch(algorithm, DIMENSION, WIDTH, DEPTH, seed=1)
    with pytest.raises(ValueError):
        sketch.update_batch(np.array([1, 2]), np.array([1.0, -1.0]))


def test_batch_validation_rejects_bad_shapes():
    sketch = make_sketch("count_min", DIMENSION, WIDTH, DEPTH, seed=1)
    with pytest.raises(IndexError):
        sketch.update_batch(np.array([0, DIMENSION]))
    with pytest.raises(IndexError):
        sketch.update_batch(np.array([-1]))
    with pytest.raises(ValueError):
        sketch.update_batch(np.array([[1, 2]]))
    with pytest.raises(ValueError):
        sketch.update_batch(np.array([1, 2]), np.array([1.0]))
    with pytest.raises(TypeError):
        sketch.update_batch(np.array([1.5, 2.0]))


def test_empty_batch_is_a_noop():
    for algorithm in ALL_ALGORITHMS:
        sketch = make_sketch(algorithm, DIMENSION, WIDTH, DEPTH, seed=3)
        sketch.update_batch(np.array([], dtype=np.int64))
        assert sketch.items_processed == 0


def test_scalar_delta_broadcasts():
    scalar, batched = _build_pair("count_sketch", 11)
    indices = np.array([1, 4, 4, 9], dtype=np.int64)
    for index in indices:
        scalar.update(int(index), 3.0)
    batched.update_batch(indices, 3.0)
    _assert_same_state(scalar, batched)
