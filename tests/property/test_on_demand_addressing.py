"""Property tests: on-demand addressing ≡ the seed-equivalent precomputed path.

For every registered sketch the refactor's contract is checked from first
principles: walk the sketch's internal ``HashedCounterTable`` instances and
compare the on-demand bucket/sign assignments against the dense tables the
old constructor would have precomputed from the same seed (regenerated here
via the per-row ``hash_all`` / ``sign_all`` evaluators, which are unchanged).
A second family re-checks that ``to_bytes``/``from_bytes`` round-trips stay
byte-stable across the refactor under arbitrary integer streams.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches._tables import HashedCounterTable
from repro.sketches.registry import available_sketches, get_spec

DIMENSION = 96
WIDTH = 16
DEPTH = 4

ALL_SKETCHES = available_sketches()

seeds = st.integers(0, 2**31 - 1)

update_streams = st.lists(
    st.tuples(st.integers(0, DIMENSION - 1), st.integers(1, 8)),
    min_size=1,
    max_size=40,
)


def _tables_of(sketch):
    """Every HashedCounterTable a sketch owns (ℓ2-S/R owns two)."""
    return [value for value in vars(sketch).values()
            if isinstance(value, HashedCounterTable)]


def _precomputed_buckets(table):
    """The dense bucket table the old constructor materialised."""
    return np.vstack([h.hash_all(table.dimension) for h in table.hashes])


def _precomputed_signs(table):
    return np.vstack(
        [r.sign_all(table.dimension) for r in table.signs]
    ).astype(np.float64)


@settings(max_examples=20, deadline=None)
@given(name=st.sampled_from(ALL_SKETCHES), seed=seeds)
def test_on_demand_assignments_match_precomputed(name, seed):
    sketch = get_spec(name).build(DIMENSION, WIDTH, DEPTH, seed=seed)
    tables = _tables_of(sketch)
    assert tables, f"{name} owns no counter tables"
    all_keys = np.arange(DIMENSION)
    for table in tables:
        expected = _precomputed_buckets(table)
        np.testing.assert_array_equal(
            table.bucket_columns(all_keys), expected
        )
        # the scalar path and the dense back-compat property agree too
        np.testing.assert_array_equal(table.bucket_column(7), expected[:, 7])
        np.testing.assert_array_equal(table.buckets, expected)
        if table.signed:
            expected_signs = _precomputed_signs(table)
            np.testing.assert_array_equal(
                table.sign_columns(all_keys), expected_signs
            )
            np.testing.assert_array_equal(
                table.sign_column(7), expected_signs[:, 7]
            )


@settings(max_examples=20, deadline=None)
@given(seed=seeds)
def test_cold_keys_match_hot_cache_assignments(seed):
    """Keys beyond the hot-key cache hash identically to cached ones."""
    table = HashedCounterTable(None, WIDTH, DEPTH, signed=True, seed=seed)
    keys = np.array([0, 1, table._cache_limit - 1, table._cache_limit,
                     table._cache_limit + 17, 2**40, 2**62])
    fused = table.bucket_columns(keys)
    per_key = np.column_stack([table.bucket_column(int(k)) for k in keys])
    np.testing.assert_array_equal(fused, per_key)
    expected = np.vstack([h.hash_array(keys) for h in table.hashes])
    np.testing.assert_array_equal(fused, expected)
    np.testing.assert_array_equal(
        table.sign_columns(keys),
        np.vstack([r.sign_array(keys) for r in table.signs]),
    )


@settings(max_examples=15, deadline=None)
@given(name=st.sampled_from(ALL_SKETCHES), seed=seeds, stream=update_streams)
def test_round_trips_stay_byte_stable(name, seed, stream):
    """to_bytes → from_bytes → to_bytes is the identity (PR-2 contract)."""
    sketch = get_spec(name).build(DIMENSION, WIDTH, DEPTH, seed=seed)
    for index, delta in stream:
        sketch.update(index, float(delta))
    payload = sketch.to_bytes()
    assert type(sketch).from_bytes(payload).to_bytes() == payload


@settings(max_examples=20, deadline=None)
@given(seed=seeds, stream=update_streams)
def test_column_sums_match_precomputed_structure(seed, stream):
    """Blockwise π/ψ scans equal the dense per-row bincounts bit-for-bit."""
    for signed in (False, True):
        table = HashedCounterTable(
            DIMENSION, WIDTH, DEPTH, signed=signed, seed=seed
        )
        dense = _precomputed_buckets(table)
        expected = np.zeros((DEPTH, WIDTH))
        weights = _precomputed_signs(table) if signed else None
        for row in range(DEPTH):
            expected[row] = np.bincount(
                dense[row],
                weights=None if weights is None else weights[row],
                minlength=WIDTH,
            )
        np.testing.assert_array_equal(table.column_sums(), expected)
