"""Property-based tests (hypothesis) for the state protocol.

Two families of invariants, each checked for *every* registered sketch:

* **round-trip fidelity** — ``from_bytes(to_bytes(s))`` restores a sketch
  whose state arrays, query results and re-encoded payload are bit-identical
  to the original, and which continues to evolve identically under further
  updates (this exercises the CML-CU generator-state restore and the
  streaming-ℓ2 heap-membership restore);
* **merge algebra** — for linear sketches, merging is associative and
  commutative on integer-weighted streams, i.e. the shard order of the
  sharded ingestion engine cannot change any answer.

Streams are integer-weighted throughout: integer scatter-adds are exact in
float64, which is what makes "bit-identical" a meaningful bar (for real
weights the guarantees hold up to floating-point summation order).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches.registry import available_sketches, get_spec, make_sketch

DIMENSION = 64
WIDTH = 16
DEPTH = 3

ALL_SKETCHES = available_sketches()
LINEAR_SKETCHES = [name for name in ALL_SKETCHES if get_spec(name).linear]

seeds = st.integers(0, 2**31 - 1)

#: a short integer-weighted cash-register stream over [0, DIMENSION)
update_streams = st.lists(
    st.tuples(
        st.integers(0, DIMENSION - 1),
        st.integers(1, 8),
    ),
    min_size=1,
    max_size=60,
)


def build(name, seed):
    return make_sketch(name, DIMENSION, WIDTH, DEPTH, seed=seed)


def replay(sketch, updates):
    indices = np.array([u[0] for u in updates], dtype=np.int64)
    deltas = np.array([u[1] for u in updates], dtype=np.float64)
    sketch.update_batch(indices, deltas)
    return sketch


def assert_states_identical(a, b, *, compare_meta=True):
    """Bit-identical state arrays, scalars and (optionally) meta."""
    sa, sb = a.state_dict(), b.state_dict()
    assert sa["kind"] == sb["kind"]
    assert set(sa["arrays"]) == set(sb["arrays"])
    for key in sa["arrays"]:
        assert np.array_equal(sa["arrays"][key], sb["arrays"][key]), key
    assert sa["scalars"] == sb["scalars"]
    if compare_meta:
        assert sa["meta"] == sb["meta"]


class TestRoundTrip:
    @settings(max_examples=8, deadline=None)
    @given(updates=update_streams, seed=seeds)
    def test_round_trip_is_bit_identical(self, updates, seed):
        for name in ALL_SKETCHES:
            original = replay(build(name, seed), updates)
            payload = original.to_bytes()
            restored = type(original).from_bytes(payload)

            assert_states_identical(original, restored)
            probe = np.arange(DIMENSION)
            assert np.array_equal(
                original.query_batch(probe), restored.query_batch(probe)
            ), name
            assert restored.to_bytes() == payload, name

    @settings(max_examples=8, deadline=None)
    @given(updates=update_streams, seed=seeds)
    def test_restored_sketch_evolves_identically(self, updates, seed):
        """Further updates after a restore replay exactly as they would have
        on the original — including CML-CU's randomised rounding draws."""
        for name in ALL_SKETCHES:
            original = replay(build(name, seed), updates)
            restored = type(original).from_bytes(original.to_bytes())
            replay(original, updates)
            replay(restored, updates)
            probe = np.arange(DIMENSION)
            assert np.array_equal(
                original.query_batch(probe), restored.query_batch(probe)
            ), name


class TestMergeAlgebra:
    @settings(max_examples=8, deadline=None)
    @given(updates=update_streams, seed=seeds)
    def test_merge_is_associative_and_commutative(self, updates, seed):
        """Shard order must not change answers: (A+B)+C == A+(B+C) == (C+B)+A.

        Meta is excluded from the comparison (``items_processed`` totals
        agree, but order-dependent bookkeeping like the streaming-ℓ2 heap
        membership may legitimately break rank ties differently; the query
        results still must not differ).
        """
        boundaries = [len(updates) // 3, 2 * len(updates) // 3]
        parts = [
            updates[: boundaries[0]],
            updates[boundaries[0]:boundaries[1]],
            updates[boundaries[1]:],
        ]
        probe = np.arange(DIMENSION)
        for name in LINEAR_SKETCHES:
            a, b, c = (replay(build(name, seed), part) for part in parts)
            left = (a + b) + c
            right = a + (b + c)
            reversed_ = (c + b) + a
            assert_states_identical(left, right, compare_meta=False)
            assert_states_identical(left, reversed_, compare_meta=False)
            assert np.array_equal(
                left.query_batch(probe), right.query_batch(probe)
            ), name
            assert np.array_equal(
                left.query_batch(probe), reversed_.query_batch(probe)
            ), name

    @settings(max_examples=8, deadline=None)
    @given(updates=update_streams, seed=seeds, shards=st.integers(2, 5))
    def test_contiguous_sharding_matches_single_sketch(self, updates, seed,
                                                       shards):
        """Merging sketches of contiguous shards equals sketching the whole
        stream — the exact invariant the sharded ingestion engine relies on."""
        indices = np.array([u[0] for u in updates], dtype=np.int64)
        deltas = np.array([u[1] for u in updates], dtype=np.float64)
        cuts = np.linspace(0, len(updates), shards + 1).astype(int)
        probe = np.arange(DIMENSION)
        for name in LINEAR_SKETCHES:
            whole = build(name, seed).update_batch(indices, deltas)
            merged = None
            for start, stop in zip(cuts[:-1], cuts[1:]):
                piece = build(name, seed).update_batch(
                    indices[start:stop], deltas[start:stop]
                )
                merged = piece if merged is None else merged.merge(piece)
            assert_states_identical(whole, merged, compare_meta=False)
            assert np.array_equal(
                whole.query_batch(probe), merged.query_batch(probe)
            ), name
