"""Property-based tests for the derived query structures and theory bounds."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.theory import (
    count_median_bound,
    count_sketch_bound,
    l1_bias_aware_bound,
    l2_bias_aware_bound,
    recommend_parameters,
)
from repro.queries.dyadic import DyadicRangeSketch


class TestDyadicDecompositionProperties:
    @given(st.integers(2, 4_096), st.data())
    @settings(max_examples=60, deadline=None)
    def test_decomposition_is_a_partition_of_the_range(self, dimension, data):
        """Every decomposition covers [low, high) exactly once, for any range."""
        structure = DyadicRangeSketch(dimension, 8, 1, algorithm="count_median",
                                      seed=0)
        low = data.draw(st.integers(0, dimension))
        high = data.draw(st.integers(low, dimension))
        covered = []
        for level, start, end in structure._decompose(low, high):
            assert 0 <= level < structure.levels
            for block in range(start, end):
                covered.extend(range(block << level, (block + 1) << level))
        assert sorted(covered) == list(range(low, high))

    @given(st.integers(2, 4_096), st.data())
    @settings(max_examples=60, deadline=None)
    def test_logarithmically_many_blocks(self, dimension, data):
        structure = DyadicRangeSketch(dimension, 8, 1, algorithm="count_median",
                                      seed=0)
        low = data.draw(st.integers(0, dimension))
        high = data.draw(st.integers(low, dimension))
        blocks = structure.queries_per_range(low, high)
        assert blocks <= 2 * structure.levels


class TestTheoryBoundProperties:
    vectors = st.lists(
        st.floats(-1e5, 1e5, allow_nan=False, allow_infinity=False),
        min_size=4, max_size=80,
    )

    @given(vectors, st.data())
    @settings(max_examples=60, deadline=None)
    def test_bias_aware_bounds_never_exceed_classical(self, values, data):
        x = np.array(values, dtype=np.float64)
        k = data.draw(st.integers(1, x.size - 1))
        spread = float(np.max(x) - np.min(x)) if x.size else 0.0
        tolerance = 1e-9 * (1.0 + spread) * x.size + 1e-9
        assert l1_bias_aware_bound(x, k) <= count_median_bound(x, k) + tolerance
        assert l2_bias_aware_bound(x, k) <= count_sketch_bound(x, k) + tolerance

    @given(st.integers(2, 10**7), st.integers(1, 10**4))
    @settings(max_examples=60, deadline=None)
    def test_recommended_parameters_are_valid(self, dimension, head_size):
        params = recommend_parameters(dimension, head_size)
        assert params.width >= 4 * head_size
        assert params.depth >= 3
        assert params.words == params.width * (params.depth + 1)
