"""Property-based tests (hypothesis) for the error functionals and optimal bias."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.errors import debiased_err, err_pk, optimal_bias

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                          allow_infinity=False, width=64)


def vectors(min_size=2, max_size=60):
    return arrays(np.float64, st.integers(min_size, max_size),
                  elements=finite_floats)


@st.composite
def vector_and_k(draw, min_size=2, max_size=60):
    x = draw(vectors(min_size, max_size))
    k = draw(st.integers(0, x.size - 1))
    return x, k


def _tolerance(x) -> float:
    """A numerical tolerance proportional to the deviation scale of ``x``."""
    spread = float(np.max(x) - np.min(x)) if x.size else 0.0
    return 1e-9 * (1.0 + spread) * max(x.size, 1) + 1e-9


class TestErrPkProperties:
    @given(vector_and_k(), st.sampled_from([1, 2]))
    @settings(max_examples=60, deadline=None)
    def test_non_negative_and_monotone_in_k(self, data, p):
        x, k = data
        value = err_pk(x, k, p)
        assert value >= 0.0
        if k + 1 < x.size:
            assert err_pk(x, k + 1, p) <= value + _tolerance(x)

    @given(vector_and_k())
    @settings(max_examples=60, deadline=None)
    def test_l2_at_most_l1(self, data):
        """For any vector the ℓ2 tail norm is at most the ℓ1 tail norm."""
        x, k = data
        assert err_pk(x, k, 2) <= err_pk(x, k, 1) + _tolerance(x)

    @given(vector_and_k(), st.sampled_from([1, 2]))
    @settings(max_examples=60, deadline=None)
    def test_invariant_under_permutation(self, data, p):
        x, k = data
        permuted = np.sort(x)[::-1].copy()
        assert abs(err_pk(x, k, p) - err_pk(permuted, k, p)) <= _tolerance(x)

    @given(vector_and_k(), st.sampled_from([1, 2]))
    @settings(max_examples=60, deadline=None)
    def test_triangle_inequality_against_k_sparse_candidates(self, data, p):
        """Err_p^k(x) is at most the norm of x with any k entries zeroed."""
        x, k = data
        zeroed = x.copy()
        zeroed[:k] = 0.0
        candidate = float(np.linalg.norm(zeroed, ord=p))
        assert err_pk(x, k, p) <= candidate + _tolerance(x)


class TestOptimalBiasProperties:
    @given(vector_and_k(), st.sampled_from([1, 2]))
    @settings(max_examples=60, deadline=None)
    def test_never_worse_than_any_candidate_beta(self, data, p):
        x, k = data
        solution = optimal_bias(x, k, p)
        for candidate in (0.0, float(np.mean(x)), float(np.median(x)), float(x[0])):
            assert solution.error <= debiased_err(x, k, candidate, p) + _tolerance(x)

    @given(vector_and_k(), st.sampled_from([1, 2]))
    @settings(max_examples=60, deadline=None)
    def test_never_worse_than_zero_bias(self, data, p):
        """The headline claim: the de-biased bound never exceeds the biased one."""
        x, k = data
        assert optimal_bias(x, k, p).error <= err_pk(x, k, p) + _tolerance(x)

    @given(vector_and_k(), st.sampled_from([1, 2]))
    @settings(max_examples=60, deadline=None)
    def test_beta_lies_within_the_value_range(self, data, p):
        x, k = data
        solution = optimal_bias(x, k, p)
        assert np.min(x) - 1e-9 <= solution.beta <= np.max(x) + 1e-9

    @given(vector_and_k(), st.sampled_from([1, 2]),
           st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False))
    @settings(max_examples=60, deadline=None)
    def test_translation_keeps_the_error(self, data, p, shift):
        """Shifting every coordinate by a constant leaves the optimal error
        unchanged (the optimal β absorbs the shift)."""
        x, k = data
        base = optimal_bias(x, k, p)
        shifted = optimal_bias(x + shift, k, p)
        assert abs(shifted.error - base.error) <= _tolerance(x) + 1e-6

    @given(vectors(), st.sampled_from([1, 2]))
    @settings(max_examples=60, deadline=None)
    def test_head_indices_are_valid_and_distinct(self, x, p):
        k = min(3, x.size - 1)
        solution = optimal_bias(x, k, p)
        assert solution.head_indices.size == k
        assert len(set(solution.head_indices.tolist())) == k
        assert np.all(solution.head_indices >= 0)
        assert np.all(solution.head_indices < x.size)

    @given(st.floats(-1e4, 1e4, allow_nan=False), st.integers(5, 40),
           st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_constant_vectors_have_zero_error(self, value, size, k):
        x = np.full(size, value)
        solution = optimal_bias(x, min(k, size - 1), 2)
        assert solution.error <= 1e-6
        assert solution.beta == np.float64(value)
