"""Property tests: segmented CU batching ≡ scalar replay.

The segmented conservative-update engine (:mod:`repro.sketches._cu_batch`)
claims more than approximate agreement: within a conflict-free segment the
min/max rule performs the *same float operations* as the scalar path, and
the CML-CU randomised-rounding draws are consumed in the scalar order, so
the batched state must be **bit-identical** to scalar replay for integer
deltas — table, ``items_processed``, and (for CML-CU) the serialised
generator state.  Float deltas are bit-identical for CML-CU too (no
coalescing); CM-CU coalesces consecutive equal indices, which changes float
summation order, so there the contract is allclose.

The geometries are chosen adversarially: tiny widths force heavy cell
collisions (down to ``width=1``, where every run is its own segment),
duplicate-heavy and sorted/reverse-sorted streams stress run coalescing and
the conflict graph, and hashed-key mode (``dimension=None``) exercises the
unbounded-universe column mapping.
"""

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches.conservative import CountMinCU
from repro.sketches.count_min_log import CountMinLogCU

DIMENSION = 96

CU_KINDS = (CountMinCU, CountMinLogCU)

#: adversarial collision pressure: width=1 collides every run, width=2/3
#: keep segments tiny, width=64 leaves most batches conflict-free
widths = st.sampled_from([1, 2, 3, 16, 64])
depths = st.integers(1, 4)
seeds = st.integers(0, 2**31 - 1)

#: integer deltas, zeros included (a zero consumes no update and no draw)
integer_updates = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=DIMENSION - 1),
        st.integers(min_value=0, max_value=50),
    ),
    min_size=0,
    max_size=120,
)

#: float deltas mixing zeros, fractions and integer-valued floats (the
#: integer-valued ones hit the CML encode tables' fraction == 0 rows)
float_updates = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=DIMENSION - 1),
        st.one_of(
            st.just(0.0),
            st.just(1.0),
            st.floats(min_value=0.0, max_value=8.0,
                      allow_nan=False, allow_infinity=False),
        ),
    ),
    min_size=0,
    max_size=100,
)


def _pair(cls, width, depth, seed, dimension=DIMENSION):
    return (
        cls(dimension, width, depth, seed=seed),
        cls(dimension, width, depth, seed=seed),
    )


def _replay(sketch, updates):
    for index, delta in updates:
        sketch.update(index, float(delta))


def _batch(updates):
    indices = np.array([index for index, _ in updates], dtype=np.int64)
    deltas = np.array([delta for _, delta in updates], dtype=np.float64)
    return indices, deltas


def _assert_identical(scalar, batched):
    assert scalar.items_processed == batched.items_processed
    np.testing.assert_array_equal(scalar.table, batched.table)
    if isinstance(scalar, CountMinLogCU):
        assert (
            scalar._rng.bit_generator.state == batched._rng.bit_generator.state
        ), "randomised-rounding draw sequences diverged"


# --------------------------------------------------------------------------- #
# bit-identity for integer deltas, under collision pressure
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("cls", CU_KINDS)
@given(updates=integer_updates, width=widths, depth=depths, seed=seeds)
@settings(max_examples=30, deadline=None)
def test_integer_deltas_bit_identical(cls, updates, width, depth, seed):
    scalar, batched = _pair(cls, width, depth, seed)
    _replay(scalar, updates)
    indices, deltas = _batch(updates)
    batched.update_batch(indices, deltas)
    _assert_identical(scalar, batched)


@pytest.mark.parametrize("cls", CU_KINDS)
@given(updates=integer_updates, width=widths, depth=depths, seed=seeds,
       chunk=st.integers(1, 13))
@settings(max_examples=15, deadline=None)
def test_chunk_boundaries_do_not_matter(cls, updates, width, depth, seed, chunk):
    """Segment boundaries only ever *add* at chunk edges; state is unchanged."""
    whole, chunked = _pair(cls, width, depth, seed)
    indices, deltas = _batch(updates)
    whole.update_batch(indices, deltas)
    for start in range(0, indices.size, chunk):
        chunked.update_batch(
            indices[start:start + chunk], deltas[start:start + chunk]
        )
    _assert_identical(whole, chunked)


# --------------------------------------------------------------------------- #
# float deltas: CML-CU stays bit-identical (no coalescing); CM-CU coalesces
# consecutive equal indices, so float summation order changes → allclose
# --------------------------------------------------------------------------- #
@given(updates=float_updates, width=widths, depth=depths, seed=seeds)
@settings(max_examples=25, deadline=None)
def test_cm_cu_float_deltas_allclose(updates, width, depth, seed):
    scalar, batched = _pair(CountMinCU, width, depth, seed)
    _replay(scalar, updates)
    indices, deltas = _batch(updates)
    batched.update_batch(indices, deltas)
    assert scalar.items_processed == batched.items_processed
    np.testing.assert_allclose(scalar.table, batched.table, rtol=1e-12, atol=0)


@given(updates=float_updates, width=widths, depth=depths, seed=seeds)
@settings(max_examples=25, deadline=None)
def test_cml_cu_float_deltas_bit_identical(updates, width, depth, seed):
    scalar, batched = _pair(CountMinLogCU, width, depth, seed)
    _replay(scalar, updates)
    indices, deltas = _batch(updates)
    batched.update_batch(indices, deltas)
    _assert_identical(scalar, batched)


# --------------------------------------------------------------------------- #
# adversarial stream shapes
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("cls", CU_KINDS)
@pytest.mark.parametrize("order", ["sorted", "reversed"])
@given(data=st.data())
@settings(max_examples=15, deadline=None)
def test_sorted_duplicate_heavy_streams(cls, order, data):
    """Sorted/reverse-sorted duplicate-heavy streams (maximal coalescing)."""
    seed = data.draw(seeds)
    width = data.draw(widths)
    raw = data.draw(
        st.lists(st.integers(0, 7), min_size=1, max_size=150)
    )
    keys = sorted(raw, reverse=(order == "reversed"))
    scalar, batched = _pair(cls, width, 3, seed)
    for key in keys:
        scalar.update(key, 2.0)
    batched.update_batch(np.array(keys, dtype=np.int64), 2.0)
    _assert_identical(scalar, batched)


@pytest.mark.parametrize("cls", CU_KINDS)
@given(keys=st.lists(st.integers(0, 2**40), min_size=0, max_size=100),
       width=widths, seed=seeds)
@settings(max_examples=20, deadline=None)
def test_hashed_key_mode_bit_identical(cls, keys, width, seed):
    """dimension=None: arbitrary 64-bit keys through the hashed column map."""
    scalar, batched = _pair(cls, width, 3, seed, dimension=None)
    for key in keys:
        scalar.update(key)
    batched.update_batch(np.array(keys, dtype=np.int64))
    _assert_identical(scalar, batched)


@pytest.mark.parametrize("cls", CU_KINDS)
@given(updates=integer_updates, seed=seeds)
@settings(max_examples=15, deadline=None)
def test_fit_matches_scalar_weighted_replay(cls, updates, seed):
    """fit() replays non-zero coordinates in index order, bit-identically."""
    vector = np.zeros(DIMENSION)
    for index, delta in updates:
        vector[index] += delta
    scalar, batched = _pair(cls, 16, 3, seed)
    for index in np.flatnonzero(vector):
        scalar.update(int(index), float(vector[index]))
    batched.fit(vector)
    _assert_identical(scalar, batched)


# --------------------------------------------------------------------------- #
# the degenerate case: every run collides, segments shrink to one run each
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("cls", CU_KINDS)
def test_all_collide_degenerate_case(cls):
    """width=1 sends every run to the same cells: segment size 1.

    Correctness must hold (each one-run segment performs exactly the scalar
    arithmetic), and the batch path must not regress to worse than the old
    per-run chunked loop — whose cost the scalar replay bounds from below.
    """
    rng = np.random.default_rng(5)
    indices = rng.integers(0, DIMENSION, size=5000)
    # distinct consecutive indices so run coalescing cannot shrink the batch
    indices[1:][indices[1:] == indices[:-1]] += 1
    indices %= DIMENSION
    deltas = rng.integers(1, 4, size=indices.size).astype(np.float64)

    scalar, batched = _pair(cls, 1, 3, seed=99)
    start = time.perf_counter()
    for index, delta in zip(indices.tolist(), deltas.tolist()):
        scalar.update(index, delta)
    scalar_time = time.perf_counter() - start

    from repro.sketches import _cu_batch

    cells = _cu_batch.flat_cells(
        batched._table.bucket_columns(indices), batched.width
    )
    bounds = _cu_batch.segment_bounds(cells, batched.width * batched.depth)
    assert bounds == list(range(indices.size + 1)), (
        "every run shares its cells, so every segment must hold one run"
    )

    start = time.perf_counter()
    batched.update_batch(indices, deltas)
    batch_time = time.perf_counter() - start

    _assert_identical(scalar, batched)
    # generous bound: both paths degrade to one python iteration per run
    assert batch_time <= scalar_time * 3.0 + 0.05, (
        f"degenerate batch path took {batch_time:.3f}s vs scalar "
        f"{scalar_time:.3f}s"
    )


@pytest.mark.parametrize("cls", CU_KINDS)
def test_zero_deltas_are_skipped_exactly(cls):
    """Zeros consume no update count and (for CML-CU) no RNG draw."""
    scalar, batched = _pair(cls, 16, 3, seed=21)
    indices = np.arange(12, dtype=np.int64) % 5
    deltas = np.where(np.arange(12) % 3 == 0, 0.0, 1.0)
    for index, delta in zip(indices.tolist(), deltas.tolist()):
        scalar.update(int(index), delta)
    batched.update_batch(indices, deltas)
    _assert_identical(scalar, batched)
    assert batched.items_processed == int(np.count_nonzero(deltas))
