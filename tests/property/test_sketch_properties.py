"""Property-based tests (hypothesis) for sketch invariants.

These exercise the structural invariants the analysis relies on rather than
statistical accuracy (which the unit and integration tests cover):
linearity, streaming/batch equivalence, conservative-update monotonicity and
the exactness of Count-Min overestimates.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import L1BiasAwareSketch, L2BiasAwareSketch
from repro.sketches import CountMedian, CountMin, CountMinCU, CountSketch

DIMENSION = 120

# Vectors are integer-valued (stored as floats).  The recovery of the
# bias-aware sketches sorts buckets by their average value, and with
# arbitrary reals two mathematically-tied bucket keys can compare differently
# depending on the floating-point summation order, which would make the
# "merge equals sketch-of-sum" comparisons flaky for reasons unrelated to the
# invariants under test.  Integer values keep all those sums exact.
count_vectors = arrays(
    np.float64,
    st.just(DIMENSION),
    elements=st.integers(min_value=0, max_value=10_000).map(float),
)

signed_vectors = arrays(
    np.float64,
    st.just(DIMENSION),
    elements=st.integers(min_value=-10_000, max_value=10_000).map(float),
)

seeds = st.integers(0, 2**31 - 1)

# Non-negative dyadic factors: scaling by them is exact in floating point and
# preserves the bucket ordering that the ℓ2 bias window is defined over.
# (Negative factors reverse the bucket order, so the scaled sketch and the
# sketch of the scaled vector may legitimately pick different — equally valid —
# middle windows; that asymmetry is not the invariant under test.)
dyadic_factors = st.sampled_from([0.0, 0.25, 0.5, 1.0, 2.0, 3.0, 8.0])

SKETCH_CLASSES = [CountMedian, CountSketch, L1BiasAwareSketch, L2BiasAwareSketch]


class TestLinearityProperties:
    @given(signed_vectors, signed_vectors, seeds,
           st.sampled_from(SKETCH_CLASSES))
    @settings(max_examples=40, deadline=None)
    def test_merge_equals_sum(self, x, y, seed, sketch_class):
        """sketch(x) + sketch(y) recovers the same estimates as sketch(x + y)."""
        a = sketch_class(DIMENSION, 16, 3, seed=seed).fit(x)
        b = sketch_class(DIMENSION, 16, 3, seed=seed).fit(y)
        a.merge(b)
        direct = sketch_class(DIMENSION, 16, 3, seed=seed).fit(x + y)
        np.testing.assert_allclose(a.recover(), direct.recover(),
                                   rtol=1e-9, atol=1e-6)

    @given(signed_vectors, seeds, dyadic_factors,
           st.sampled_from(SKETCH_CLASSES))
    @settings(max_examples=40, deadline=None)
    def test_scaling(self, x, seed, factor, sketch_class):
        scaled = sketch_class(DIMENSION, 16, 3, seed=seed).fit(x).scale(factor)
        direct = sketch_class(DIMENSION, 16, 3, seed=seed).fit(factor * x)
        np.testing.assert_allclose(scaled.recover(), direct.recover(),
                                   rtol=1e-9, atol=1e-6)

    @given(signed_vectors, seeds, st.sampled_from(SKETCH_CLASSES))
    @settings(max_examples=40, deadline=None)
    def test_streaming_equals_batch(self, x, seed, sketch_class):
        batch = sketch_class(DIMENSION, 16, 3, seed=seed).fit(x)
        streamed = sketch_class(DIMENSION, 16, 3, seed=seed)
        for index in np.flatnonzero(x):
            streamed.update(int(index), float(x[index]))
        np.testing.assert_allclose(batch.recover(), streamed.recover(),
                                   rtol=1e-9, atol=1e-6)

    @given(signed_vectors, seeds)
    @settings(max_examples=40, deadline=None)
    def test_turnstile_cancellation(self, x, seed):
        """Inserting then deleting every item returns the sketch to zero."""
        sketch = CountSketch(DIMENSION, 16, 3, seed=seed)
        for index in np.flatnonzero(x):
            sketch.update(int(index), float(x[index]))
        for index in np.flatnonzero(x):
            sketch.update(int(index), -float(x[index]))
        np.testing.assert_allclose(sketch.recover(), np.zeros(DIMENSION),
                                   atol=1e-6)


class TestCountMinProperties:
    @given(count_vectors, seeds)
    @settings(max_examples=40, deadline=None)
    def test_count_min_never_underestimates(self, x, seed):
        sketch = CountMin(DIMENSION, 16, 3, seed=seed).fit(x)
        assert np.all(sketch.recover() >= x - 1e-6)

    @given(count_vectors, seeds)
    @settings(max_examples=40, deadline=None)
    def test_conservative_update_sandwiched(self, x, seed):
        """x ≤ CM-CU estimate ≤ CM estimate, coordinate-wise."""
        cm = CountMin(DIMENSION, 16, 3, seed=seed).fit(x)
        cu = CountMinCU(DIMENSION, 16, 3, seed=seed).fit(x)
        assert np.all(cu.recover() >= x - 1e-6)
        assert np.all(cu.recover() <= cm.recover() + 1e-6)

    @given(count_vectors, seeds)
    @settings(max_examples=40, deadline=None)
    def test_row_sums_preserve_total_mass(self, x, seed):
        """Every CM row is a partition of the vector: row sums equal Σx."""
        sketch = CountMin(DIMENSION, 16, 3, seed=seed).fit(x)
        np.testing.assert_allclose(sketch.table.sum(axis=1),
                                   np.full(3, x.sum()), rtol=1e-9, atol=1e-6)


class TestBiasAwareProperties:
    @given(count_vectors, seeds)
    @settings(max_examples=40, deadline=None)
    def test_bias_estimate_within_value_range(self, x, seed):
        for sketch_class in (L1BiasAwareSketch, L2BiasAwareSketch):
            sketch = sketch_class(DIMENSION, 16, 3, seed=seed).fit(x)
            beta = sketch.estimate_bias()
            assert np.min(x) - 1e-6 <= beta <= np.max(x) + 1e-6

    @given(st.floats(-1e4, 1e4, allow_nan=False), seeds)
    @settings(max_examples=40, deadline=None)
    def test_constant_vector_recovered_exactly(self, value, seed):
        """A perfectly biased vector (all coordinates equal) is recovered
        exactly by the ℓ2 bias-aware sketch: the de-biased vector is zero."""
        x = np.full(DIMENSION, value)
        sketch = L2BiasAwareSketch(DIMENSION, 16, 3, seed=seed).fit(x)
        np.testing.assert_allclose(sketch.recover(), x, rtol=1e-9, atol=1e-6)
