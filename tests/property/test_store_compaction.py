"""Property-based tests (hypothesis) for store compaction.

Compaction folds the closed panes of a retained windowed snapshot into a
single pane.  Because the window view *is* the merge of the panes and the
pane sketches are linear, the grouping is algebraically irrelevant — so the
contract is exact and universally quantified:

* **answers are preserved** — after ``compact``, every restored version
  recovers the same frequency vector, reports the same in-window item
  count, and answers point queries identically;
* **storage shrinks** — a compacted snapshot holds at most two panes and
  strictly fewer payload bytes whenever panes were actually folded.
"""

import tempfile
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import SketchConfig, SketchSession
from repro.sketches.registry import available_sketches, get_spec
from repro.store import SketchStore
from repro.streaming.windows import WindowSpec

DIMENSION = 64

LINEAR_SKETCHES = [
    name for name in available_sketches() if get_spec(name).linear
]

seeds = st.integers(0, 2**31 - 1)

#: a dense integer count vector (ingested as one update per non-zero entry)
count_vectors = st.lists(
    st.integers(0, 8), min_size=DIMENSION, max_size=DIMENSION
).map(lambda counts: np.asarray(counts, dtype=float))


def windowed_session(name, seed, panes, pane_size, vector):
    spec = WindowSpec(mode="sliding", panes=panes, pane_size=pane_size,
                      by="count")
    config = SketchConfig(name, dimension=DIMENSION, width=16, depth=3,
                          seed=seed, window=spec)
    session = SketchSession.from_config(config)
    session.ingest(vector)
    return session


@given(
    name=st.sampled_from(LINEAR_SKETCHES),
    seed=seeds,
    panes=st.integers(2, 6),
    pane_size=st.integers(1, 12),
    vectors=st.lists(count_vectors, min_size=1, max_size=4),
)
@settings(max_examples=20, deadline=None)
def test_compaction_preserves_answers_and_shrinks_payloads(
    name, seed, panes, pane_size, vectors
):
    sessions = [
        windowed_session(name, seed, panes, pane_size, vector)
        for vector in vectors
    ]
    with tempfile.TemporaryDirectory() as tmp:
        with SketchStore(Path(tmp) / "catalog.db") as store:
            for session in sessions:
                store.put("win", session)
            before = {snapshot.version: snapshot
                      for snapshot in store.history("win")}
            report = store.compact("win", keep_latest=False, vacuum=False)
            assert report.bytes_after <= report.bytes_before
            if report.panes_folded > 0:
                assert report.bytes_after < report.bytes_before
            for snapshot in store.history("win"):
                original = before[snapshot.version]
                assert snapshot.payload_bytes <= original.payload_bytes
                if snapshot.compacted:
                    assert snapshot.pane_count <= 2
            for version, session in enumerate(sessions, start=1):
                restored = store.get("win", version)
                assert np.array_equal(restored.recover(), session.recover())
                assert restored.items_processed == session.items_processed
                assert restored.items_in_window == session.items_in_window
                for index in (0, DIMENSION // 2, DIMENSION - 1):
                    assert restored.query(kind="point", index=index) == \
                        session.query(kind="point", index=index)


@given(
    name=st.sampled_from(LINEAR_SKETCHES),
    seed=seeds,
    vector=count_vectors,
)
@settings(max_examples=10, deadline=None)
def test_compacted_latest_still_accepts_updates(name, seed, vector):
    """Folding the latest snapshot keeps it a live, ingestible window."""
    session = windowed_session(name, seed, panes=3, pane_size=5, vector=vector)
    with tempfile.TemporaryDirectory() as tmp:
        with SketchStore(Path(tmp) / "catalog.db") as store:
            store.put("win", session)
            store.compact("win", keep_latest=False, vacuum=False)
            restored = store.get("win")
        # both copies now diverge identically under further ingestion:
        # the folded closed pane only changes *when* evictions happen, not
        # what the live panes hold, so fresh updates must still land
        items_before = restored.items_in_window
        restored.ingest(np.arange(3), deltas=2.0)
        assert restored.items_processed == session.items_processed + 3
        assert restored.items_in_window <= max(items_before + 3,
                                               restored.items_in_window)
