"""Property-based tests (hypothesis) for the sliding-window engine.

The windowing layer is pure plumbing over the pane-merge algebra, so its
core contract is *exact*: for every linear sketch and every pane geometry,

* **window/fresh equivalence** — the windowed estimate is bit-identical to
  a fresh sketch fed only the in-window updates (the suffix of the stream
  the live panes cover), for count- and time-based panes, scalar and
  batched replay;
* **pane merge order is irrelevant** — the merged view equals the panes
  merged in any permutation (linearity);
* **decay algebra** — the decayed sketch equals the per-pane sketches
  merged with weights ``decay**age`` via ``scale``.

Streams are integer-weighted throughout: integer scatter-adds are exact in
float64, which is what makes "bit-identical" a meaningful bar.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import CapabilityError, SketchConfig
from repro.sketches.registry import available_sketches, get_spec
from repro.streaming import SlidingWindowSketch, WindowSpec

DIMENSION = 64
WIDTH = 16
DEPTH = 3

LINEAR_SKETCHES = [
    name for name in available_sketches() if get_spec(name).linear
]
NON_LINEAR_SKETCHES = [
    name for name in available_sketches() if not get_spec(name).linear
]

seeds = st.integers(0, 2**31 - 1)

#: a short integer-weighted cash-register stream over [0, DIMENSION)
update_streams = st.lists(
    st.tuples(
        st.integers(0, DIMENSION - 1),
        st.integers(1, 8),
    ),
    min_size=1,
    max_size=60,
)


def base_config(name, seed, window=None):
    return SketchConfig(name, dimension=DIMENSION, width=WIDTH, depth=DEPTH,
                        seed=seed, window=window)


def build_window(name, seed, panes, pane_size, by="count"):
    spec = WindowSpec(mode="sliding", panes=panes, pane_size=pane_size, by=by)
    return SlidingWindowSketch(base_config(name, seed, window=spec))


def in_window_count(total, panes, pane_size):
    """Updates the live panes cover after ``total`` count-based updates."""
    closes = total // pane_size
    fill = total % pane_size
    return fill + min(closes, panes - 1) * pane_size


def fresh_replay(name, seed, updates):
    sketch = base_config(name, seed).build()
    for index, delta in updates:
        sketch.update(index, float(delta))
    return sketch


def assert_states_identical(a, b, *, compare_meta=False):
    """Bit-identical state arrays and scalars (meta excluded by default:
    order-dependent bookkeeping like the streaming-ℓ2 heap membership may
    break rank ties differently across merge orders)."""
    sa, sb = a.state_dict(), b.state_dict()
    assert sa["kind"] == sb["kind"]
    assert set(sa["arrays"]) == set(sb["arrays"])
    for key in sa["arrays"]:
        assert np.array_equal(sa["arrays"][key], sb["arrays"][key]), key
    assert sa["scalars"] == sb["scalars"]
    if compare_meta:
        assert sa["meta"] == sb["meta"]


class TestWindowFreshEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(updates=update_streams, seed=seeds,
           panes=st.integers(1, 4), pane_size=st.integers(1, 7))
    def test_window_equals_fresh_sketch_on_suffix(self, updates, seed, panes,
                                                  pane_size):
        """The windowed estimate is bit-identical to a fresh sketch fed only
        the in-window updates — for every linear sketch kind."""
        expected = in_window_count(len(updates), panes, pane_size)
        suffix = updates[len(updates) - expected:]
        probe = np.arange(DIMENSION)
        for name in LINEAR_SKETCHES:
            window = build_window(name, seed, panes, pane_size)
            for index, delta in updates:
                window.update(index, float(delta))
            assert window.items_in_window == expected, name
            fresh = fresh_replay(name, seed, suffix)
            view = window.view()
            assert_states_identical(view, fresh)
            assert np.array_equal(
                view.query_batch(probe), fresh.query_batch(probe)
            ), name

    @settings(max_examples=8, deadline=None)
    @given(updates=update_streams, seed=seeds,
           panes=st.integers(1, 4), pane_size=st.integers(1, 7))
    def test_batched_replay_reaches_the_same_window(self, updates, seed,
                                                    panes, pane_size):
        """One vectorised update_batch call lands every update in the same
        pane as the scalar replay (same bytes, hence same window)."""
        indices = np.array([u[0] for u in updates], dtype=np.int64)
        deltas = np.array([u[1] for u in updates], dtype=np.float64)
        for name in LINEAR_SKETCHES:
            scalar = build_window(name, seed, panes, pane_size)
            for index, delta in updates:
                scalar.update(index, float(delta))
            batched = build_window(name, seed, panes, pane_size)
            batched.update_batch(indices, deltas)
            assert batched.to_bytes() == scalar.to_bytes(), name

    @settings(max_examples=8, deadline=None)
    @given(updates=update_streams, seed=seeds, panes=st.integers(1, 4),
           pane_span=st.sampled_from([0.5, 1.0, 3.0]),
           horizon=st.floats(1.0, 20.0))
    def test_time_window_equals_fresh_sketch_on_suffix(self, updates, seed,
                                                       panes, pane_span,
                                                       horizon):
        """Time-based panes: the window summarises exactly the updates whose
        pane index is within ``panes`` of the open pane."""
        count = len(updates)
        stamps = np.linspace(0.0, horizon, count)
        pane_ids = np.floor(stamps / pane_span).astype(np.int64)
        open_pane = int(pane_ids[-1])
        kept = [u for u, pane in zip(updates, pane_ids)
                if pane > open_pane - panes]
        probe = np.arange(DIMENSION)
        for name in LINEAR_SKETCHES:
            window = build_window(name, seed, panes, pane_span, by="time")
            for (index, delta), stamp in zip(updates, stamps):
                window.update(index, float(delta), timestamp=float(stamp))
            fresh = fresh_replay(name, seed, kept)
            view = window.view()
            assert_states_identical(view, fresh)
            assert np.array_equal(
                view.query_batch(probe), fresh.query_batch(probe)
            ), name


class TestPaneMergeOrder:
    @settings(max_examples=8, deadline=None)
    @given(updates=update_streams, seed=seeds, shuffle_seed=seeds)
    def test_pane_merge_order_is_irrelevant(self, updates, seed, shuffle_seed):
        """Merging the live panes in any permutation reproduces the view."""
        panes, pane_size = 4, 5
        for name in LINEAR_SKETCHES:
            window = build_window(name, seed, panes, pane_size)
            for index, delta in updates:
                window.update(index, float(delta))
            live = list(window._closed) + [window._current]
            order = np.random.default_rng(shuffle_seed).permutation(len(live))
            merged = live[order[0]].copy()
            for position in order[1:]:
                merged.merge(live[position])
            assert_states_identical(window.view(), merged)
            probe = np.arange(DIMENSION)
            assert np.array_equal(
                window.view().query_batch(probe), merged.query_batch(probe)
            ), name


class TestDecayAlgebra:
    @settings(max_examples=8, deadline=None)
    @given(updates=update_streams, seed=seeds,
           pane_size=st.integers(1, 7),
           decay=st.sampled_from([0.25, 0.5, 0.75]))
    def test_decay_equals_weighted_pane_merge(self, updates, seed, pane_size,
                                              decay):
        """The decayed sketch equals the per-pane sketches scaled by
        ``decay**age`` and merged — decay is a weighted window.

        Exact powers of two keep every scale exact in float64, so the
        comparison is again bit-identical.
        """
        spec = WindowSpec(mode="decay", pane_size=pane_size, decay=decay)
        probe = np.arange(DIMENSION)
        for name in LINEAR_SKETCHES:
            window = SlidingWindowSketch(base_config(name, seed, window=spec))
            for index, delta in updates:
                window.update(index, float(delta))
            # group updates into their panes and rebuild the weighted sum
            boundaries = range(0, len(updates), pane_size)
            panes = [updates[start:start + pane_size] for start in boundaries]
            ages = [len(panes) - 1 - position if len(updates) % pane_size
                    else len(panes) - position for position in range(len(panes))]
            reference = base_config(name, seed).build()
            for age, pane_updates in zip(ages, panes):
                pane = fresh_replay(name, seed, pane_updates)
                pane.scale(decay ** age)
                reference.merge(pane)
            assert np.array_equal(
                window.view().query_batch(probe),
                reference.query_batch(probe),
            ), name


class TestCapabilityGuards:
    @pytest.mark.parametrize("name", NON_LINEAR_SKETCHES)
    def test_non_linear_sketches_are_rejected(self, name):
        with pytest.raises(CapabilityError, match="pane-merge algebra"):
            base_config(name, 1, window=WindowSpec(pane_size=4))
