"""Property-based tests (hypothesis) for the hashing and Bias-Heap structures."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core._indexed_heap import IndexedMinHeap
from repro.core.bias import MiddleBucketsMeanEstimator
from repro.core.bias_heap import BiasHeap
from repro.hashing.families import KWiseHash, MERSENNE_PRIME_61
from repro.hashing.signs import SignHash


class TestHashingProperties:
    @given(st.integers(1, 1_000), st.integers(0, 2**31 - 1),
           st.lists(st.integers(0, 2**40), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_outputs_always_in_range(self, range_size, seed, items):
        h = KWiseHash(range_size, seed=seed)
        for item in items:
            assert 0 <= h(item) < range_size

    @given(st.integers(2, 500), st.integers(0, 2**31 - 1),
           st.lists(st.integers(0, MERSENNE_PRIME_61 - 1), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_vectorised_matches_scalar(self, range_size, seed, items):
        h = KWiseHash(range_size, independence=2, seed=seed)
        vectorised = h.hash_array(np.array(items, dtype=np.uint64))
        assert list(vectorised) == [h(item) for item in items]

    @given(st.integers(0, 2**31 - 1), st.lists(st.integers(0, 2**40),
                                               min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_sign_values_and_determinism(self, seed, items):
        r = SignHash(seed=seed)
        first = [r(item) for item in items]
        second = [r(item) for item in items]
        assert first == second
        assert all(value in (-1, 1) for value in first)


class TestIndexedHeapProperties:
    @given(st.dictionaries(st.integers(0, 200), st.floats(-1e6, 1e6,
                                                          allow_nan=False),
                           min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_drains_in_sorted_order(self, keyed):
        heap = IndexedMinHeap()
        for node_id, key in keyed.items():
            heap.push(node_id, key)
        drained = [heap.pop() for _ in range(len(heap))]
        assert drained == sorted(drained)

    @given(st.dictionaries(st.integers(0, 200), st.floats(-1e6, 1e6,
                                                          allow_nan=False),
                           min_size=2, max_size=60),
           st.data())
    @settings(max_examples=50, deadline=None)
    def test_removal_preserves_order_of_the_rest(self, keyed, data):
        heap = IndexedMinHeap()
        for node_id, key in keyed.items():
            heap.push(node_id, key)
        victim = data.draw(st.sampled_from(sorted(keyed)))
        heap.remove(victim)
        drained = [heap.pop() for _ in range(len(heap))]
        expected = sorted((key, node_id) for node_id, key in keyed.items()
                          if node_id != victim)
        assert drained == expected


class TestBiasHeapProperties:
    @given(
        st.integers(4, 40),
        st.integers(0, 2**31 - 1),
        st.lists(
            st.tuples(st.integers(0, 10_000), st.floats(-1e4, 1e4,
                                                        allow_nan=False)),
            min_size=1,
            max_size=120,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_streaming_matches_batch_estimator_and_invariants_hold(
        self, buckets, seed, updates
    ):
        """After any update sequence the heap matches the re-sorted estimate
        (up to key ties) and its internal invariants hold."""
        rng = np.random.default_rng(seed)
        pi = rng.integers(1, 5, size=buckets).astype(float)
        head_size = max(1, buckets // 4)
        heap = BiasHeap(pi, head_size=head_size)
        w = np.zeros(buckets)
        for raw_bucket, delta in updates:
            bucket = raw_bucket % buckets
            heap.update(bucket, delta)
            w[bucket] += delta
        heap.check_invariants()

        keys = np.where(pi > 0, w / np.maximum(pi, 1e-12), 0.0)
        # only compare against the brute-force estimator when all keys are
        # distinct; with ties the middle window is not unique
        if np.unique(keys).size == keys.size:
            expected = MiddleBucketsMeanEstimator(head_size).estimate_from_buckets(
                w, pi
            )
            assert np.isclose(heap.bias(), expected, rtol=1e-9, atol=1e-9)

    @given(st.integers(4, 64), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_initialisation_from_w_matches_incremental(self, buckets, seed):
        rng = np.random.default_rng(seed)
        pi = rng.integers(1, 4, size=buckets).astype(float)
        w = rng.normal(0.0, 100.0, size=buckets)
        bulk = BiasHeap(pi, initial_w=w)
        incremental = BiasHeap(pi)
        for bucket, value in enumerate(w):
            incremental.update(bucket, float(value))
        assert np.isclose(bulk.bias(), incremental.bias(), rtol=1e-9, atol=1e-9)
        bulk.check_invariants()
        incremental.check_invariants()
