"""Property tests: pooled sharded ingestion ≡ single-process ingestion.

The zero-copy engine is only usable if folding per-worker shared-memory
blocks is *indistinguishable* from ingesting the whole stream in one
process.  Linearity makes this exact for integer-valued weights (integer
scatter-adds are exact in float64, so summation order cannot matter) and
exact-up-to-summation-order for arbitrary reals.  Hypothesis drives every
linear kind through a warm pool — including hashed-key mode over an
unbounded universe — and compares full state: counter arrays, scalar
state, and the items-processed counter.

One pool per (kind, mode) is spawned lazily and reused across examples
(that is the engine's intended warm-pool usage, and it keeps the suite
fast); the module teardown closes them all and verifies no shared-memory
segment leaked.
"""

from multiprocessing import shared_memory

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches.registry import available_sketches, get_spec
from repro.streaming import ShardedIngestPool

DIMENSION = 96
WIDTH = 16
DEPTH = 3
SEED = 11
WORKERS = 2
SHARDS = 3

LINEAR = [n for n in available_sketches() if get_spec(n).linear]
HASHED_CAPABLE = ["count_min", "count_median", "count_sketch"]

#: warm pools reused across hypothesis examples, keyed by (name, dimension)
_pools = {}
_released_segments = []


def warm_pool(name, dimension):
    key = (name, dimension)
    if key not in _pools:
        _pools[key] = ShardedIngestPool(
            name, dimension, WIDTH, DEPTH, SEED, workers=WORKERS
        )
    return _pools[key]


@pytest.fixture(scope="module", autouse=True)
def _pool_teardown():
    yield
    for pool in _pools.values():
        _released_segments.extend(pool.segment_names())
        pool.close()
    _pools.clear()
    # leak check: every segment the pools ever owned must be unlinked
    for segment_name in _released_segments:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=segment_name)


def ingest_both_ways(name, dimension, indices, deltas):
    spec = get_spec(name)
    expected = spec.build(dimension, WIDTH, DEPTH, seed=SEED)
    if indices.size:
        expected.update_batch(indices, deltas)
    target = spec.build(dimension, WIDTH, DEPTH, seed=SEED)
    warm_pool(name, dimension).ingest(
        indices, deltas, target=target, shards=SHARDS
    )
    return expected, target


def assert_same_state(expected, target, exact):
    state_a = expected._state_arrays()
    state_b = target._state_arrays()
    assert state_a.keys() == state_b.keys()
    for key in state_a:
        if exact:
            np.testing.assert_array_equal(state_b[key], state_a[key])
        else:
            np.testing.assert_allclose(
                state_b[key], state_a[key], rtol=1e-9, atol=1e-12
            )
    scalars_a = expected._state_scalars()
    scalars_b = target._state_scalars()
    assert scalars_a.keys() == scalars_b.keys()
    for key in scalars_a:
        assert scalars_b[key] == pytest.approx(scalars_a[key])
    assert target.items_processed == expected.items_processed


integer_updates = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=DIMENSION - 1),
        st.integers(min_value=-50, max_value=50),
    ),
    min_size=0,
    max_size=120,
)

real_updates = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=DIMENSION - 1),
        st.floats(min_value=-100.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False, width=64),
    ),
    min_size=1,
    max_size=120,
)

hashed_updates = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2**40),
        st.integers(min_value=-50, max_value=50),
    ),
    min_size=1,
    max_size=120,
)


def to_arrays(updates):
    indices = np.array([i for i, _ in updates], dtype=np.int64)
    deltas = np.array([w for _, w in updates], dtype=np.float64)
    return indices, deltas


@pytest.mark.parametrize("name", LINEAR)
@settings(max_examples=15, deadline=None)
@given(updates=integer_updates)
def test_integer_streams_are_bit_identical(name, updates):
    indices, deltas = to_arrays(updates)
    expected, target = ingest_both_ways(name, DIMENSION, indices, deltas)
    assert_same_state(expected, target, exact=True)


@pytest.mark.parametrize("name", LINEAR)
@settings(max_examples=10, deadline=None)
@given(updates=real_updates)
def test_real_streams_agree_to_summation_order(name, updates):
    indices, deltas = to_arrays(updates)
    expected, target = ingest_both_ways(name, DIMENSION, indices, deltas)
    assert_same_state(expected, target, exact=False)


@pytest.mark.parametrize("name", HASHED_CAPABLE)
@settings(max_examples=10, deadline=None)
@given(updates=hashed_updates)
def test_hashed_key_mode_is_bit_identical(name, updates):
    indices, deltas = to_arrays(updates)
    expected, target = ingest_both_ways(name, None, indices, deltas)
    assert_same_state(expected, target, exact=True)


@pytest.mark.parametrize("name", LINEAR)
def test_query_estimates_match(name):
    """End-to-end sanity on a larger stream: estimates, not just state."""
    rng = np.random.default_rng(4)
    indices = rng.integers(0, DIMENSION, size=5_000).astype(np.int64)
    expected, target = ingest_both_ways(name, DIMENSION, indices, None)
    queries = np.arange(DIMENSION, dtype=np.int64)
    np.testing.assert_allclose(
        target.query_batch(queries), expected.query_batch(queries),
        rtol=1e-9,
    )
