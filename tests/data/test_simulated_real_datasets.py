"""Unit tests for the simulated substitutes of the paper's real datasets.

Each test checks the statistical property the corresponding experiment relies
on (see DESIGN.md §4): bias strength, skew, non-negativity, and — for the
Hudong substitute — the power-law degree structure and the stream/vector
consistency.
"""

import numpy as np
import pytest

from repro.data.higgs import simulated_higgs
from repro.data.hudong import simulated_hudong
from repro.data.meme import simulated_meme
from repro.data.wiki import simulated_wiki
from repro.data.worldcup import simulated_worldcup


class TestWorldCup:
    def test_counts_are_non_negative_integers(self):
        ds = simulated_worldcup(dimension=5_000, seed=1)
        assert np.all(ds.vector >= 0)
        np.testing.assert_allclose(ds.vector, np.round(ds.vector))

    def test_average_rate_is_calibrated(self):
        # diurnal modulation averages out only over full days, so switch it
        # off to check the rate calibration in isolation
        ds = simulated_worldcup(dimension=20_000, average_rate=37.0,
                                diurnal_amplitude=0.0, flash_crowds=0, seed=2)
        assert ds.vector.mean() == pytest.approx(37.0, rel=0.15)

    def test_flash_crowds_create_outliers(self):
        calm = simulated_worldcup(dimension=10_000, flash_crowds=0, seed=3)
        bursty = simulated_worldcup(dimension=10_000, flash_crowds=5,
                                    flash_multiplier=20.0, seed=3)
        assert bursty.vector.max() > 3 * calm.vector.max()

    def test_moderate_bias_gain(self):
        ds = simulated_worldcup(dimension=10_000, seed=4)
        assert ds.summary(head_size=100)["bias_gain_l2"] > 1.2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            simulated_worldcup(diurnal_amplitude=1.5)
        with pytest.raises(ValueError):
            simulated_worldcup(average_rate=0.0)


class TestWiki:
    def test_strong_bias(self):
        """Wiki-like data is tightly concentrated around a large mean."""
        ds = simulated_wiki(dimension=10_000, seed=1)
        coefficient_of_variation = ds.vector.std() / ds.vector.mean()
        assert coefficient_of_variation < 0.25
        assert ds.summary(head_size=100)["bias_gain_l2"] > 3.0

    def test_mean_close_to_configured_rate(self):
        ds = simulated_wiki(dimension=10_000, average_rate=3_700.0,
                            diurnal_amplitude=0.0, weekly_amplitude=0.0,
                            spikes=0, seed=2)
        assert ds.vector.mean() == pytest.approx(3_700.0, rel=0.1)

    def test_counts_non_negative(self):
        ds = simulated_wiki(dimension=3_000, seed=3)
        assert np.all(ds.vector >= 0)


class TestHiggsAndMeme:
    def test_higgs_non_negative_and_right_skewed(self):
        ds = simulated_higgs(dimension=20_000, seed=1)
        assert np.all(ds.vector >= 0)
        mean, median = ds.vector.mean(), np.median(ds.vector)
        assert mean > median  # right skew

    def test_higgs_outliers_optional(self):
        clean = simulated_higgs(dimension=5_000, outliers=0, seed=2)
        dirty = simulated_higgs(dimension=5_000, outliers=10, outlier_value=100.0,
                                seed=2)
        assert dirty.vector.max() > clean.vector.max() + 50.0

    def test_higgs_invalid_parameters(self):
        with pytest.raises(ValueError):
            simulated_higgs(shape=0.0)
        with pytest.raises(ValueError):
            simulated_higgs(dimension=10, outliers=10)

    def test_meme_lengths_are_small_positive_integers(self):
        ds = simulated_meme(dimension=20_000, seed=1)
        assert np.all(ds.vector >= 1)
        np.testing.assert_allclose(ds.vector, np.round(ds.vector))
        assert ds.vector.mean() == pytest.approx(8.0, rel=0.15)

    def test_meme_invalid_parameters(self):
        with pytest.raises(ValueError):
            simulated_meme(mean_length=1.0, minimum_length=1)
        with pytest.raises(ValueError):
            simulated_meme(dispersion=0.0)


class TestHudong:
    def test_stream_accumulates_to_degree_vector(self):
        stream = simulated_hudong(dimension=500, edges=5_000, seed=1)
        replayed = np.zeros(500)
        for article, delta in stream.iter_updates():
            replayed[article] += delta
        np.testing.assert_allclose(replayed, stream.degree_vector())

    def test_total_edges(self):
        stream = simulated_hudong(dimension=300, edges=2_000, seed=2)
        assert stream.updates == 2_000
        assert stream.degree_vector().sum() == pytest.approx(2_000)

    def test_preferential_attachment_is_heavy_tailed(self):
        stream = simulated_hudong(dimension=2_000, edges=40_000, seed=3)
        degrees = np.sort(stream.degree_vector())[::-1]
        # the top articles accumulate far more links than the median article
        assert degrees[0] > 5 * np.median(degrees[degrees > 0])

    def test_to_dataset_round_trip(self):
        stream = simulated_hudong(dimension=400, edges=3_000, seed=4)
        ds = stream.to_dataset()
        assert ds.name == "hudong"
        np.testing.assert_allclose(ds.vector, stream.degree_vector())

    def test_reproducible_with_seed(self):
        a = simulated_hudong(dimension=200, edges=1_000, seed=5)
        b = simulated_hudong(dimension=200, edges=1_000, seed=5)
        np.testing.assert_array_equal(a.sources, b.sources)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            simulated_hudong(attachment_smoothing=0.0)
