CREATE TABLE listing (
    sketch_id       INTEGER PRIMARY KEY
                    REFERENCES sketches(sketch_id) ON DELETE CASCADE,
    name            TEXT NOT NULL UNIQUE,
    kind            TEXT NOT NULL,
    windowed        INTEGER NOT NULL,
    latest_version  INTEGER NOT NULL,
    snapshot_count  INTEGER NOT NULL,
    total_bytes     INTEGER NOT NULL,
    items_processed INTEGER NOT NULL,
    updated_at      TEXT NOT NULL
);

CREATE TABLE sketches (
    sketch_id  INTEGER PRIMARY KEY,
    name       TEXT NOT NULL UNIQUE,
    created_at TEXT NOT NULL
);

CREATE TABLE snapshots (
    snapshot_id     INTEGER PRIMARY KEY,
    sketch_id       INTEGER NOT NULL
                    REFERENCES sketches(sketch_id) ON DELETE CASCADE,
    version         INTEGER NOT NULL,
    kind            TEXT NOT NULL,
    dimension       INTEGER,
    width           INTEGER NOT NULL,
    depth           INTEGER NOT NULL,
    seed            INTEGER,
    windowed        INTEGER NOT NULL DEFAULT 0,
    window_mode     TEXT,
    pane_count      INTEGER,
    items_processed INTEGER NOT NULL,
    payload_bytes   INTEGER NOT NULL,
    compacted       INTEGER NOT NULL DEFAULT 0,
    created_at      TEXT NOT NULL,
    payload         BLOB NOT NULL,
    UNIQUE (sketch_id, version)
);
