"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data.synthetic import (
    gaussian_dataset,
    gaussian2_dataset,
    shifted_gaussian_dataset,
    uniform_dataset,
    zipf_dataset,
)


class TestGaussian:
    def test_dimensions_and_parameters(self):
        ds = gaussian_dataset(dimension=5_000, bias=100.0, sigma=15.0, seed=1)
        assert ds.dimension == 5_000
        assert ds.vector.mean() == pytest.approx(100.0, abs=1.0)
        assert ds.vector.std() == pytest.approx(15.0, rel=0.1)

    def test_reproducible_with_seed(self):
        a = gaussian_dataset(dimension=100, seed=7)
        b = gaussian_dataset(dimension=100, seed=7)
        np.testing.assert_array_equal(a.vector, b.vector)

    def test_bias_parameter_shifts_the_vector(self):
        low = gaussian_dataset(dimension=2_000, bias=100.0, seed=1)
        high = gaussian_dataset(dimension=2_000, bias=500.0, seed=1)
        assert high.vector.mean() - low.vector.mean() == pytest.approx(400.0, abs=2.0)

    def test_invalid_sigma_rejected(self):
        with pytest.raises(ValueError):
            gaussian_dataset(dimension=10, sigma=-1.0)

    def test_summary_reports_large_bias_gain(self):
        ds = gaussian_dataset(dimension=3_000, bias=500.0, sigma=15.0, seed=2)
        summary = ds.summary(head_size=30)
        assert summary["bias_gain_l2"] > 5.0
        assert summary["optimal_bias_l2"] == pytest.approx(500.0, abs=5.0)


class TestShiftedAndGaussian2:
    def test_no_shift_reduces_to_plain_gaussian(self):
        ds = gaussian2_dataset(dimension=1_000, shifted_entries=0, seed=3)
        assert ds.name == "gaussian2"
        assert ds.vector.mean() == pytest.approx(100.0, abs=2.0)

    def test_shifted_entries_are_recorded_and_applied(self):
        ds = shifted_gaussian_dataset(
            dimension=2_000, shifted_entries=20, shift=50_000.0, seed=4
        )
        indices = ds.metadata["shifted_indices"]
        assert len(indices) == 20
        assert np.all(ds.vector[indices] > 10_000.0)

    def test_shift_breaks_the_mean_but_not_the_optimal_bias(self):
        ds = shifted_gaussian_dataset(
            dimension=2_000, shifted_entries=20, shift=100_000.0, seed=5
        )
        summary = ds.summary(head_size=40)
        assert abs(summary["mean"] - 100.0) > 500.0
        assert summary["optimal_bias_l2"] == pytest.approx(100.0, abs=5.0)

    def test_invalid_shifted_entries_rejected(self):
        with pytest.raises(ValueError):
            shifted_gaussian_dataset(dimension=10, shifted_entries=10)
        with pytest.raises(ValueError):
            shifted_gaussian_dataset(dimension=10, shifted_entries=-1)


class TestOtherSynthetics:
    def test_zipf_total_items(self):
        ds = zipf_dataset(dimension=500, total_items=10_000, seed=6)
        assert ds.vector.sum() == pytest.approx(10_000)
        assert np.all(ds.vector >= 0)

    def test_zipf_is_heavy_tailed(self):
        ds = zipf_dataset(dimension=1_000, exponent=1.5, total_items=100_000, seed=7)
        sorted_counts = np.sort(ds.vector)[::-1]
        assert sorted_counts[0] > 20 * sorted_counts[100]

    def test_zipf_invalid_exponent(self):
        with pytest.raises(ValueError):
            zipf_dataset(dimension=10, exponent=0.0)

    def test_uniform_bounds(self):
        ds = uniform_dataset(dimension=2_000, low=10.0, high=20.0, seed=8)
        assert ds.vector.min() >= 10.0
        assert ds.vector.max() < 20.0

    def test_uniform_invalid_bounds(self):
        with pytest.raises(ValueError):
            uniform_dataset(dimension=10, low=5.0, high=5.0)
