"""Unit tests for the dataset container and registry."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.registry import available_datasets, load_dataset


class TestDataset:
    def test_validates_vector(self):
        with pytest.raises(ValueError):
            Dataset(name="bad", vector=np.array([np.nan, 1.0]))

    def test_total_mass_and_dimension(self):
        ds = Dataset(name="toy", vector=[1.0, 2.0, 3.0])
        assert ds.dimension == 3
        assert ds.total_mass == pytest.approx(6.0)

    def test_summary_keys(self):
        ds = Dataset(name="toy", vector=np.arange(50, dtype=float))
        summary = ds.summary(head_size=5)
        for key in ("err1_tail", "err2_debiased", "bias_gain_l1", "optimal_bias_l2"):
            assert key in summary

    def test_summary_caps_head_size(self):
        ds = Dataset(name="tiny", vector=[1.0, 2.0, 3.0])
        summary = ds.summary(head_size=100)  # capped to n - 1 internally
        assert np.isfinite(summary["err1_debiased"])


class TestRegistry:
    def test_all_registered_datasets_load(self):
        for name in available_datasets():
            ds = load_dataset(name, seed=0, dimension=300)
            assert ds.dimension == 300

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError, match="available"):
            load_dataset("nonexistent")

    def test_kwargs_forwarded_to_generator(self):
        ds = load_dataset("gaussian", seed=1, dimension=500, bias=250.0)
        assert ds.vector.mean() == pytest.approx(250.0, abs=3.0)

    def test_expected_names_present(self):
        names = available_datasets()
        for expected in ("gaussian", "gaussian2", "wiki", "worldcup", "higgs",
                         "meme", "hudong", "zipf"):
            assert expected in names
