"""Unit tests for the Bias-Heap (Algorithm 5)."""

import numpy as np
import pytest

from repro.core.bias import MiddleBucketsMeanEstimator
from repro.core.bias_heap import BiasHeap


def brute_force_bias(w: np.ndarray, pi: np.ndarray, head_size: int) -> float:
    """Reference implementation: sort buckets by average, average the middle 2k."""
    estimator = MiddleBucketsMeanEstimator(head_size)
    return estimator.estimate_from_buckets(w, pi)


class TestBiasHeapConstruction:
    def test_default_head_size_is_quarter_of_buckets(self):
        heap = BiasHeap(np.ones(32))
        assert heap.head_size == 8

    def test_rejects_negative_bucket_counts(self):
        with pytest.raises(ValueError):
            BiasHeap(np.array([1.0, -1.0]))

    def test_rejects_empty_and_2d(self):
        with pytest.raises(ValueError):
            BiasHeap(np.array([]))
        with pytest.raises(ValueError):
            BiasHeap(np.ones((2, 2)))

    def test_initial_bias_is_zero_without_updates(self):
        heap = BiasHeap(np.ones(16))
        assert heap.bias() == pytest.approx(0.0)

    def test_initial_w_accepted_and_used(self, rng):
        pi = rng.integers(1, 5, size=32).astype(float)
        w = rng.normal(50.0, 5.0, size=32) * pi
        heap = BiasHeap(pi, head_size=8, initial_w=w)
        heap.check_invariants()
        assert heap.bias() == pytest.approx(brute_force_bias(w, pi, 8), rel=0.2)

    def test_initial_w_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BiasHeap(np.ones(4), initial_w=np.ones(5))


class TestBiasHeapUpdates:
    def test_update_invalid_bucket_rejected(self):
        heap = BiasHeap(np.ones(8))
        with pytest.raises(IndexError):
            heap.update(8, 1.0)

    def test_update_to_empty_bucket_rejected(self):
        pi = np.array([1.0, 0.0, 1.0, 1.0])
        heap = BiasHeap(pi, head_size=1)
        with pytest.raises(ValueError):
            heap.update(1, 1.0)

    def test_invariants_hold_under_random_updates(self, rng):
        pi = rng.integers(1, 6, size=24).astype(float)
        heap = BiasHeap(pi, head_size=6)
        for _ in range(500):
            bucket = int(rng.integers(0, 24))
            heap.update(bucket, float(rng.normal(10.0, 20.0)))
        heap.check_invariants()

    def test_bias_matches_brute_force_after_updates(self, rng):
        """The streaming estimate matches re-sorting from scratch (up to ties)."""
        pi = rng.integers(1, 4, size=40).astype(float)
        heap = BiasHeap(pi, head_size=10)
        w = np.zeros(40)
        for _ in range(300):
            bucket = int(rng.integers(0, 40))
            delta = float(rng.normal(25.0, 10.0))
            heap.update(bucket, delta)
            w[bucket] += delta
        # continuous deltas make key ties measure-zero, so the match is exact
        assert heap.bias() == pytest.approx(brute_force_bias(w, pi, 10))
        heap.check_invariants()

    def test_tracks_bias_of_a_biased_stream(self, rng):
        """Feeding a CM row of a biased vector yields that bias."""
        from repro.matrices.cm import CMMatrix

        vector = rng.normal(75.0, 5.0, size=5_000)
        matrix = CMMatrix(64, vector.size, seed=3)
        pi = matrix.column_sums()
        heap = BiasHeap(pi, head_size=16)
        for index, value in enumerate(vector):
            heap.update(matrix.bucket(index), float(value))
        assert heap.bias() == pytest.approx(75.0, abs=2.0)

    def test_middle_buckets_count(self):
        heap = BiasHeap(np.ones(32), head_size=8)
        assert heap.middle_buckets().size == 16

    def test_negative_updates_supported(self, rng):
        """Turnstile streams: deletions move buckets back down the order."""
        pi = np.ones(16)
        heap = BiasHeap(pi, head_size=4)
        heap.update(3, 100.0)
        heap.update(3, -100.0)
        heap.check_invariants()
        assert heap.bias() == pytest.approx(0.0)
