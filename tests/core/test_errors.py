"""Unit tests for the tail-error functionals and the exact optimal bias."""

import numpy as np
import pytest

from repro.core.errors import (
    bias_gain,
    debias,
    debiased_err,
    err_pk,
    optimal_bias,
    optimal_bias_error,
)


class TestErrPk:
    def test_paper_running_example(self, paper_example_vector):
        """Equation (3): Err_1^2 = 700 and Err_2^2 = √69428 ≈ 263.49."""
        assert err_pk(paper_example_vector, 2, 1) == pytest.approx(700.0)
        assert err_pk(paper_example_vector, 2, 2) == pytest.approx(
            np.sqrt(69_428.0)
        )

    def test_k_zero_is_full_norm(self):
        x = np.array([3.0, -4.0])
        assert err_pk(x, 0, 1) == pytest.approx(7.0)
        assert err_pk(x, 0, 2) == pytest.approx(5.0)

    def test_k_sparse_vector_has_zero_error(self):
        x = np.zeros(20)
        x[3], x[17] = 5.0, -9.0
        assert err_pk(x, 2, 1) == 0.0
        assert err_pk(x, 2, 2) == 0.0

    def test_head_selected_by_magnitude_not_value(self):
        x = np.array([-100.0, 1.0, 2.0, 50.0])
        # the 2 largest magnitudes are -100 and 50
        assert err_pk(x, 2, 1) == pytest.approx(3.0)

    def test_monotone_in_k(self, rng):
        x = rng.normal(size=100)
        errors = [err_pk(x, k, 2) for k in range(0, 50, 5)]
        assert all(a >= b for a, b in zip(errors, errors[1:]))

    def test_invalid_arguments(self):
        x = np.ones(5)
        with pytest.raises(ValueError):
            err_pk(x, 5, 1)  # k must be < n
        with pytest.raises(ValueError):
            err_pk(x, -1, 1)
        with pytest.raises(ValueError):
            err_pk(x, 1, 3)
        with pytest.raises(TypeError):
            err_pk(x, 1.5, 1)


class TestDebias:
    def test_subtracts_scalar_from_every_coordinate(self):
        np.testing.assert_allclose(debias([1.0, 2.0, 3.0], 2.0), [-1.0, 0.0, 1.0])

    def test_debiased_err_equals_err_of_debias(self, paper_example_vector):
        assert debiased_err(paper_example_vector, 2, 100.0, 1) == pytest.approx(
            err_pk(debias(paper_example_vector, 100.0), 2, 1)
        )


class TestOptimalBias:
    def test_paper_running_example_l1(self, paper_example_vector):
        solution = optimal_bias(paper_example_vector, 2, 1)
        assert solution.beta == pytest.approx(100.0)
        assert solution.error == pytest.approx(12.0)
        # the dropped head must be the two extreme coordinates 3 and 500
        assert set(solution.head_indices) == {0, 3}

    def test_paper_running_example_l2(self, paper_example_vector):
        solution = optimal_bias(paper_example_vector, 2, 2)
        assert solution.beta == pytest.approx(100.0)
        assert solution.error == pytest.approx(np.sqrt(28.0))
        assert set(solution.head_indices) == {0, 3}

    def test_warmup_example_mean_fails_but_optimal_bias_succeeds(self):
        """Section 4.1: x = (M, M, 50, ..., 50) with k = 2 has optimal error 0."""
        huge = 1e12
        x = np.array([huge, huge] + [50.0] * 7)
        solution = optimal_bias(x, 2, 1)
        assert solution.beta == pytest.approx(50.0)
        assert solution.error == pytest.approx(0.0)
        # the mean is nowhere near the optimal bias
        assert abs(np.mean(x) - solution.beta) > 1e10

    def test_multiple_bias_values_cannot_be_fully_removed(self):
        """Remark 1's example: a two-level vector keeps a non-zero error."""
        y = np.array([200.0, 100, 50, 50, 50, 50, 100, 100, 100, 10])
        solution = optimal_bias(y, 2, 1)
        assert solution.error > 0.0

    def test_never_worse_than_zero_bias(self, rng):
        for p in (1, 2):
            for _ in range(10):
                x = rng.normal(rng.uniform(-50, 50), 10.0, size=200)
                assert optimal_bias_error(x, 5, p) <= err_pk(x, 5, p) + 1e-9

    def test_exhaustive_check_against_grid_search(self, rng):
        """The sliding-window optimum matches a dense grid search over β."""
        x = rng.normal(10.0, 3.0, size=60)
        x[:4] += 100.0
        for p in (1, 2):
            solution = optimal_bias(x, 4, p)
            betas = np.linspace(x.min(), x.max(), 4_001)
            grid_best = min(debiased_err(x, 4, beta, p) for beta in betas)
            assert solution.error <= grid_best + 1e-6

    def test_constant_vector_has_zero_debiased_error(self):
        x = np.full(30, 7.5)
        solution = optimal_bias(x, 3, 2)
        assert solution.beta == pytest.approx(7.5)
        assert solution.error == pytest.approx(0.0)

    def test_exactly_debiasable_tail_with_huge_head_is_zero(self):
        """A huge head coordinate must not leave cancellation noise in an
        exactly-zero tail cost (the prefix-of-squares subtraction cancels
        at the head's magnitude)."""
        x = np.array([0.0, 0.0, -65.0, -1.8927117819257546])
        assert optimal_bias(x, 2, 2).error == 0.0
        x = np.array([0.0, 0.0, -4098.0, -2.8927117819257546])
        assert optimal_bias(x, 2, 2).error == 0.0

    def test_cancellation_floor_does_not_clamp_real_costs(self):
        """A huge coordinate sorting after the window must not raise the
        cancellation floor and zero out genuinely nonzero window costs."""
        x = np.array([0.0, 0.0, 100.0, 100.0, 100.0, 1e9])
        solution = optimal_bias(x, 2, 2)
        betas = np.linspace(0.0, 150.0, 3_001)
        grid_best = min(debiased_err(x, 2, beta, 2) for beta in betas)
        assert solution.error == pytest.approx(grid_best, rel=1e-3)
        assert solution.error > 1.0

    def test_cancellation_floor_is_ulp_scaled(self):
        """A huge coordinate sorting *before* the window inflates the
        prefix scale, but exactly representable small costs survive and
        the true optimal window is still selected."""
        assert optimal_bias(
            np.array([-1e6, 0.0, 1.0]), 1, 2
        ).error == pytest.approx(np.sqrt(0.5))
        solution = optimal_bias(np.array([-1e6, 0.0, 1.0, 10.0, 10.05]), 3, 2)
        assert solution.beta == pytest.approx(10.025)
        # the cost itself carries prefix-scale rounding (~10 ulps of 1e12),
        # so only window/β selection and the rough magnitude are exact
        assert solution.error == pytest.approx(0.035355, rel=0.05)

    def test_head_indices_size(self, rng):
        x = rng.normal(size=50)
        solution = optimal_bias(x, 7, 1)
        assert solution.head_indices.size == 7

    def test_k_zero_gives_global_centre(self):
        x = np.array([1.0, 2.0, 3.0, 10.0])
        l1 = optimal_bias(x, 0, 1)
        l2 = optimal_bias(x, 0, 2)
        assert l1.beta == pytest.approx(np.median(x))
        assert l2.beta == pytest.approx(np.mean(x))


class TestBiasGain:
    def test_large_gain_on_strongly_biased_vector(self, rng):
        x = rng.normal(1_000.0, 1.0, size=500)
        assert bias_gain(x, 10, 2) > 100.0

    def test_gain_is_at_least_one(self, rng):
        x = rng.normal(0.0, 1.0, size=300)
        assert bias_gain(x, 10, 1) >= 1.0 - 1e-12

    def test_zero_vector_gain_is_one(self):
        assert bias_gain(np.zeros(10), 2, 1) == 1.0

    def test_infinite_gain_when_debiasing_removes_all_error(self):
        x = np.full(20, 3.0)
        x[0] = 50.0
        assert bias_gain(x, 1, 1) == float("inf")
