"""Unit tests for ℓ2-S/R (Algorithms 3-4, Theorem 4)."""

import numpy as np
import pytest

from repro.core import L2BiasAwareSketch, optimal_bias, optimal_bias_error
from repro.sketches import CountSketch


class TestL2BiasAware:
    def test_bias_estimate_close_to_optimal_on_biased_gaussian(self, rng):
        vector = rng.normal(500.0, 20.0, size=20_000)
        sketch = L2BiasAwareSketch(vector.size, 256, 5, seed=1).fit(vector)
        optimal = optimal_bias(vector, 64, 2).beta
        assert sketch.estimate_bias() == pytest.approx(optimal, abs=10.0)

    def test_bias_estimate_robust_to_outliers(self, biased_gaussian_vector):
        """Lemma 6: contaminated buckets are pushed out of the middle window."""
        sketch = L2BiasAwareSketch(
            biased_gaussian_vector.size, 128, 5, seed=2
        ).fit(biased_gaussian_vector)
        assert sketch.estimate_bias() == pytest.approx(100.0, abs=20.0)

    def test_recovery_beats_count_sketch_on_biased_data(self, biased_gaussian_vector):
        n = biased_gaussian_vector.size
        ours = L2BiasAwareSketch(n, 128, 7, seed=3).fit(biased_gaussian_vector)
        baseline = CountSketch(n, 128, 8, seed=3).fit(biased_gaussian_vector)
        our_error = np.mean(np.abs(ours.recover() - biased_gaussian_vector))
        baseline_error = np.mean(np.abs(baseline.recover() - biased_gaussian_vector))
        assert our_error < baseline_error / 2.0

    def test_theorem4_error_bound(self, rng):
        """‖x̂ - x‖∞ ≤ C/√k · min_β Err_2^k(x - β) with a generous constant.

        Also checks the error sits far below the biased Theorem 2 bound that
        plain Count-Sketch guarantees — the strict improvement of the paper.
        """
        from repro.core.errors import err_pk

        n, k = 4_000, 16
        vector = rng.normal(1_000.0, 2.0, size=n)
        heavy = rng.choice(n, size=k, replace=False)
        vector[heavy] += 2_000.0
        sketch = L2BiasAwareSketch(n, width=16 * k, depth=9, seed=5).fit(vector)
        max_error = np.max(np.abs(sketch.recover() - vector))
        debiased_bound = optimal_bias_error(vector, k, 2) / np.sqrt(k)
        biased_bound = err_pk(vector, k, 2) / np.sqrt(k)
        assert max_error <= 20.0 * debiased_bound
        assert max_error <= 0.1 * biased_bound

    def test_matches_count_sketch_when_bias_is_zero(self, rng):
        """With very few non-zero coordinates every middle bucket is empty,
        β̂ is exactly 0, and the recovery coincides with plain Count-Sketch."""
        vector = np.zeros(1_000)
        hot = rng.choice(1_000, size=5, replace=False)
        vector[hot] = rng.poisson(50.0, size=5)
        sketch = L2BiasAwareSketch(1_000, 64, 5, seed=7).fit(vector)
        assert sketch.estimate_bias() == pytest.approx(0.0)
        baseline = CountSketch(1_000, 64, 5, seed=7).fit(vector)
        np.testing.assert_allclose(sketch.recover(), baseline.recover())

    def test_default_head_size_is_quarter_of_width(self):
        sketch = L2BiasAwareSketch(100, 64, 3, seed=0)
        assert sketch.head_size == 16

    def test_invalid_head_size_rejected(self):
        with pytest.raises(ValueError):
            L2BiasAwareSketch(100, 64, 3, head_size=0, seed=0)
        with pytest.raises(ValueError):
            L2BiasAwareSketch(100, 64, 3, head_size=33, seed=0)

    def test_merge_requires_same_head_size(self, small_count_vector):
        n = small_count_vector.size
        a = L2BiasAwareSketch(n, 32, 3, head_size=4, seed=1).fit(small_count_vector)
        b = L2BiasAwareSketch(n, 32, 3, head_size=8, seed=1).fit(small_count_vector)
        with pytest.raises(ValueError, match="head_size"):
            a.merge(b)

    def test_size_includes_the_extra_bias_row(self):
        sketch = L2BiasAwareSketch(500, 64, 5, seed=0)
        assert sketch.size_in_words() == 64 * 5 + 64

    def test_bias_bucket_counts_sum_to_dimension(self):
        sketch = L2BiasAwareSketch(500, 64, 5, seed=0)
        assert sketch.bias_bucket_counts.sum() == pytest.approx(500)

    def test_query_matches_recover(self, biased_gaussian_vector):
        sketch = L2BiasAwareSketch(
            biased_gaussian_vector.size, 64, 5, seed=9
        ).fit(biased_gaussian_vector)
        recovered = sketch.recover()
        for index in [1, 250, 4_998]:
            assert sketch.query(index) == pytest.approx(recovered[index])

    def test_mergability_demonstrates_corollary2_l2_guarantee(self, rng):
        """‖x̂ - x‖₂ = O(1)·min_β Err_2^k(x-β) (Corollary 2), generous constant."""
        n, k = 3_000, 8
        vector = rng.normal(200.0, 3.0, size=n)
        vector[:k] += 2_000.0
        sketch = L2BiasAwareSketch(n, 16 * k, 9, seed=11).fit(vector)
        l2_error = float(np.linalg.norm(sketch.recover() - vector))
        assert l2_error <= 20.0 * optimal_bias_error(vector, k, 2)
