"""Unit tests for ℓ1-S/R (Algorithms 1-2, Theorem 3)."""

import numpy as np
import pytest

from repro.core import L1BiasAwareSketch, optimal_bias, optimal_bias_error
from repro.sketches import CountMedian


class TestL1BiasAware:
    def test_bias_estimate_close_to_optimal_on_biased_gaussian(self, rng):
        vector = rng.normal(300.0, 10.0, size=20_000)
        sketch = L1BiasAwareSketch(vector.size, 256, 5, seed=1).fit(vector)
        optimal = optimal_bias(vector, 64, 1).beta
        assert sketch.estimate_bias() == pytest.approx(optimal, abs=5.0)

    def test_recovery_beats_count_median_on_biased_data(self, biased_gaussian_vector):
        n = biased_gaussian_vector.size
        ours = L1BiasAwareSketch(n, 128, 7, seed=3).fit(biased_gaussian_vector)
        baseline = CountMedian(n, 128, 8, seed=3).fit(biased_gaussian_vector)
        our_error = np.mean(np.abs(ours.recover() - biased_gaussian_vector))
        baseline_error = np.mean(np.abs(baseline.recover() - biased_gaussian_vector))
        assert our_error < baseline_error / 5.0

    def test_theorem3_error_bound(self, rng):
        """‖x̂ - x‖∞ ≤ C/k · min_β Err_1^k(x - β) with a generous constant.

        The same error is also checked to be far below the *biased* bound of
        Theorem 1 (what Count-Median guarantees) — the strict improvement the
        paper claims.
        """
        from repro.core.errors import err_pk

        n, k = 4_000, 16
        vector = rng.normal(1_000.0, 2.0, size=n)
        heavy = rng.choice(n, size=k, replace=False)
        vector[heavy] += 2_000.0
        sketch = L1BiasAwareSketch(n, width=16 * k, depth=9, seed=5).fit(vector)
        max_error = np.max(np.abs(sketch.recover() - vector))
        debiased_bound = optimal_bias_error(vector, k, 1) / k
        biased_bound = err_pk(vector, k, 1) / k
        assert max_error <= 10.0 * debiased_bound
        assert max_error <= 0.05 * biased_bound

    def test_matches_count_median_when_bias_is_zero(self, rng):
        """With β̂ = 0 the recovery reduces exactly to Count-Median."""
        vector = np.zeros(1_000)
        hot = rng.choice(1_000, size=20, replace=False)
        vector[hot] = rng.poisson(50.0, size=20)
        sketch = L1BiasAwareSketch(1_000, 64, 5, seed=7).fit(vector)
        assert sketch.estimate_bias() == pytest.approx(0.0)
        baseline = CountMedian(1_000, 64, 5, seed=7).fit(vector)
        np.testing.assert_allclose(sketch.recover(), baseline.recover())

    def test_query_matches_recover(self, biased_gaussian_vector):
        sketch = L1BiasAwareSketch(
            biased_gaussian_vector.size, 64, 5, seed=9
        ).fit(biased_gaussian_vector)
        recovered = sketch.recover()
        for index in [0, 17, 4_999]:
            assert sketch.query(index) == pytest.approx(recovered[index])

    def test_bias_samples_parameter_controls_extra_words(self):
        default = L1BiasAwareSketch(500, 64, 5, seed=0)
        assert default.size_in_words() == 64 * 5 + 64  # samples default to width
        custom = L1BiasAwareSketch(500, 64, 5, bias_samples=100, seed=0)
        assert custom.size_in_words() == 64 * 5 + 100

    def test_merge_requires_same_bias_samples(self, small_count_vector):
        n = small_count_vector.size
        a = L1BiasAwareSketch(n, 32, 3, bias_samples=50, seed=1).fit(small_count_vector)
        b = L1BiasAwareSketch(n, 32, 3, bias_samples=60, seed=1).fit(small_count_vector)
        with pytest.raises(ValueError, match="bias samples"):
            a.merge(b)

    def test_sample_values_property_tracks_samples(self, small_count_vector):
        sketch = L1BiasAwareSketch(small_count_vector.size, 32, 3, seed=2)
        sketch.fit(small_count_vector)
        assert sketch.sample_values.shape == (32,)
        assert sketch.estimate_bias() == pytest.approx(
            float(np.median(sketch.sample_values))
        )
