"""Unit tests for the ℓ1-mean / ℓ2-mean heuristics (Section 5.4)."""

import numpy as np
import pytest

from repro.core import (
    L1MeanSketch,
    L2BiasAwareSketch,
    L2MeanSketch,
)
from repro.sketches import CountMedian, CountSketch


class TestMeanHeuristics:
    def test_bias_estimate_is_exact_mean(self, biased_gaussian_vector):
        sketch = L2MeanSketch(biased_gaussian_vector.size, 64, 5, seed=1)
        sketch.fit(biased_gaussian_vector)
        assert sketch.estimate_bias() == pytest.approx(biased_gaussian_vector.mean())

    def test_works_well_without_outliers(self, rng):
        """Figure 8a-8b: on clean N(100, 15²) the heuristics match ℓ-S/R."""
        vector = rng.normal(100.0, 15.0, size=10_000)
        mean_sketch = L2MeanSketch(10_000, 128, 5, seed=2).fit(vector)
        aware_sketch = L2BiasAwareSketch(10_000, 128, 5, seed=2).fit(vector)
        mean_error = np.mean(np.abs(mean_sketch.recover() - vector))
        aware_error = np.mean(np.abs(aware_sketch.recover() - vector))
        assert mean_error == pytest.approx(aware_error, rel=0.5)

    def test_breaks_under_shifted_entries(self, rng):
        """Figure 8c-8d: shifting a few entries by a huge amount breaks the mean."""
        vector = rng.normal(100.0, 15.0, size=10_000)
        # keep the number of shifted entries well below the sketch width
        # (s >= 4k), as in the paper's setup (500 shifted entries, s >= 10^4)
        shifted = rng.choice(10_000, size=20, replace=False)
        vector[shifted] += 100_000.0
        mean_sketch = L2MeanSketch(10_000, 512, 5, seed=3).fit(vector)
        aware_sketch = L2BiasAwareSketch(10_000, 512, 5, seed=3).fit(vector)
        mean_error = np.mean(np.abs(mean_sketch.recover() - vector))
        aware_error = np.mean(np.abs(aware_sketch.recover() - vector))
        assert mean_error > 5.0 * aware_error

    def test_l1_variant_uses_unsigned_rows(self, small_count_vector):
        sketch = L1MeanSketch(small_count_vector.size, 32, 3, seed=4)
        assert sketch.signed is False
        sketch.fit(small_count_vector)
        assert sketch.recover().shape == small_count_vector.shape

    def test_l2_variant_uses_signed_rows(self):
        assert L2MeanSketch(100, 16, 2, seed=0).signed is True

    def test_reduces_to_baseline_when_mean_is_zero(self, rng):
        """A zero-mean vector gives β̂ = 0 and the recovery equals the baseline."""
        vector = rng.normal(0.0, 10.0, size=2_000)
        vector -= vector.mean()  # force the mean to be exactly (near) zero
        l1_mean = L1MeanSketch(2_000, 64, 5, seed=5).fit(vector)
        baseline = CountMedian(2_000, 64, 5, seed=5).fit(vector)
        np.testing.assert_allclose(l1_mean.recover(), baseline.recover(), atol=1e-6)
        l2_mean = L2MeanSketch(2_000, 64, 5, seed=5).fit(vector)
        cs_baseline = CountSketch(2_000, 64, 5, seed=5).fit(vector)
        np.testing.assert_allclose(l2_mean.recover(), cs_baseline.recover(), atol=1e-6)

    def test_merge_rejects_cross_variant(self, small_count_vector):
        n = small_count_vector.size
        a = L1MeanSketch(n, 32, 3, seed=1).fit(small_count_vector)
        b = L2MeanSketch(n, 32, 3, seed=1).fit(small_count_vector)
        with pytest.raises(TypeError):
            a.merge(b)

    def test_sketch_names_for_result_tables(self):
        assert L1MeanSketch(10, 4, 2, seed=0).name == "l1_mean"
        assert L2MeanSketch(10, 4, 2, seed=0).name == "l2_mean"

    def test_size_counts_one_extra_word_for_the_running_sum(self):
        sketch = L1MeanSketch(100, 32, 3, seed=0)
        assert sketch.size_in_words() == 32 * 3 + 1
