"""Unit tests for the indexed min/max heaps backing the Bias-Heap."""

import pytest

from repro.core._indexed_heap import IndexedMaxHeap, IndexedMinHeap


class TestIndexedMinHeap:
    def test_push_peek_pop_ordering(self):
        heap = IndexedMinHeap()
        for node_id, key in [(0, 5.0), (1, 1.0), (2, 3.0), (3, 4.0)]:
            heap.push(node_id, key)
        assert heap.peek() == (1.0, 1)
        assert [heap.pop()[1] for _ in range(4)] == [1, 2, 3, 0]

    def test_remove_arbitrary_node(self):
        heap = IndexedMinHeap()
        for node_id in range(10):
            heap.push(node_id, float(10 - node_id))
        heap.remove(5)
        assert 5 not in heap
        remaining = [heap.pop()[1] for _ in range(len(heap))]
        assert remaining == [9, 8, 7, 6, 4, 3, 2, 1, 0]

    def test_duplicate_push_rejected(self):
        heap = IndexedMinHeap()
        heap.push(1, 2.0)
        with pytest.raises(ValueError):
            heap.push(1, 3.0)

    def test_remove_missing_raises(self):
        heap = IndexedMinHeap()
        with pytest.raises(KeyError):
            heap.remove(3)

    def test_peek_and_pop_empty_raise(self):
        heap = IndexedMinHeap()
        with pytest.raises(IndexError):
            heap.peek()
        with pytest.raises(IndexError):
            heap.pop()

    def test_key_of(self):
        heap = IndexedMinHeap()
        heap.push(7, 3.25)
        assert heap.key_of(7) == 3.25
        with pytest.raises(KeyError):
            heap.key_of(8)

    def test_ties_broken_by_node_id(self):
        heap = IndexedMinHeap()
        heap.push(5, 1.0)
        heap.push(2, 1.0)
        heap.push(9, 1.0)
        assert [heap.pop()[1] for _ in range(3)] == [2, 5, 9]

    def test_randomised_against_sorting(self, rng):
        heap = IndexedMinHeap()
        keys = {i: float(rng.integers(0, 100)) for i in range(200)}
        for node_id, key in keys.items():
            heap.push(node_id, key)
        # remove a random subset by id
        removed = set(int(i) for i in rng.choice(200, size=60, replace=False))
        for node_id in removed:
            heap.remove(node_id)
        drained = [heap.pop() for _ in range(len(heap))]
        expected = sorted(
            (key, node_id) for node_id, key in keys.items() if node_id not in removed
        )
        assert drained == expected


class TestIndexedMaxHeap:
    def test_returns_maximum(self):
        heap = IndexedMaxHeap()
        for node_id, key in [(0, 5.0), (1, 9.0), (2, 3.0)]:
            heap.push(node_id, key)
        assert heap.peek() == (9.0, 1)
        assert heap.pop() == (9.0, 1)
        assert heap.peek() == (5.0, 0)

    def test_remove_and_key_of_preserve_sign(self):
        heap = IndexedMaxHeap()
        heap.push(4, 2.5)
        assert heap.key_of(4) == 2.5
        assert heap.remove(4) == (2.5, 4)

    def test_contains_and_len(self):
        heap = IndexedMaxHeap()
        heap.push(1, 1.0)
        heap.push(2, 2.0)
        assert 1 in heap and 3 not in heap
        assert len(heap) == 2
