"""Unit tests for the streaming variants (Section 4.4, Algorithm 6)."""

import numpy as np
import pytest

from repro.core import (
    L1BiasAwareSketch,
    L2BiasAwareSketch,
    StreamingL1BiasAwareSketch,
    StreamingL2BiasAwareSketch,
)


class TestStreamingL1:
    def test_bias_matches_batch_variant(self, rng):
        vector = rng.normal(40.0, 3.0, size=2_000)
        streaming = StreamingL1BiasAwareSketch(2_000, 64, 5, seed=1)
        for index, value in enumerate(vector):
            streaming.update(index, float(value))
        batch = L1BiasAwareSketch(2_000, 64, 5, seed=1).fit(vector)
        assert streaming.estimate_bias() == pytest.approx(batch.estimate_bias())

    def test_recovery_matches_batch_variant(self, small_count_vector):
        n = small_count_vector.size
        streaming = StreamingL1BiasAwareSketch(n, 64, 5, seed=2)
        for index in np.flatnonzero(small_count_vector):
            streaming.update(int(index), float(small_count_vector[index]))
        batch = L1BiasAwareSketch(n, 64, 5, seed=2).fit(small_count_vector)
        np.testing.assert_allclose(streaming.recover(), batch.recover())

    def test_bias_available_at_every_time_step(self, rng):
        """Real-time queries: the bias estimate never needs a re-scan."""
        streaming = StreamingL1BiasAwareSketch(500, 32, 3, seed=3)
        biases = []
        for index in range(500):
            streaming.update(index, float(rng.normal(10.0, 1.0)))
            if index % 100 == 0:
                biases.append(streaming.estimate_bias())
        assert len(biases) == 5
        assert biases[-1] == pytest.approx(10.0, abs=2.0)

    def test_fit_then_updates_keeps_sorted_structure_consistent(self, rng):
        vector = rng.poisson(20.0, size=300).astype(float)
        streaming = StreamingL1BiasAwareSketch(300, 32, 3, seed=4).fit(vector)
        streaming.update(5, 7.0)
        reference = L1BiasAwareSketch(300, 32, 3, seed=4).fit(vector)
        reference.update(5, 7.0)
        assert streaming.estimate_bias() == pytest.approx(reference.estimate_bias())

    def test_copy_preserves_streaming_state(self, rng):
        streaming = StreamingL1BiasAwareSketch(200, 32, 3, seed=5)
        for index in range(100):
            streaming.update(index, float(rng.normal(5.0, 1.0)))
        clone = streaming.copy()
        assert clone.estimate_bias() == pytest.approx(streaming.estimate_bias())
        clone.update(0, 1_000.0)  # further updates do not leak back
        assert streaming.query(0) != pytest.approx(clone.query(0))


class TestStreamingL2:
    def test_bias_matches_batch_variant_on_tie_free_data(self, rng):
        vector = rng.normal(60.0, 5.0, size=2_000)
        streaming = StreamingL2BiasAwareSketch(2_000, 64, 5, seed=1)
        for index, value in enumerate(vector):
            streaming.update(index, float(value))
        batch = L2BiasAwareSketch(2_000, 64, 5, seed=1).fit(vector)
        assert streaming.estimate_bias() == pytest.approx(batch.estimate_bias())

    def test_point_queries_match_batch_variant(self, rng):
        vector = rng.normal(60.0, 5.0, size=1_000)
        streaming = StreamingL2BiasAwareSketch(1_000, 64, 5, seed=2)
        for index, value in enumerate(vector):
            streaming.update(index, float(value))
        batch = L2BiasAwareSketch(1_000, 64, 5, seed=2).fit(vector)
        for index in [0, 123, 999]:
            assert streaming.query(index) == pytest.approx(batch.query(index))

    def test_heap_invariants_after_long_stream(self, rng):
        streaming = StreamingL2BiasAwareSketch(500, 32, 3, seed=3)
        for _ in range(2_000):
            streaming.update(int(rng.integers(0, 500)), float(rng.normal(3.0, 1.0)))
        streaming.bias_heap.check_invariants()

    def test_fit_rebuilds_the_heap(self, rng):
        vector = rng.normal(30.0, 2.0, size=800)
        streaming = StreamingL2BiasAwareSketch(800, 64, 5, seed=4).fit(vector)
        batch = L2BiasAwareSketch(800, 64, 5, seed=4).fit(vector)
        assert streaming.estimate_bias() == pytest.approx(batch.estimate_bias())

    def test_merge_rebuilds_the_heap(self, rng):
        x = rng.normal(30.0, 2.0, size=400)
        y = rng.normal(50.0, 2.0, size=400)
        a = StreamingL2BiasAwareSketch(400, 32, 3, seed=5).fit(x)
        b = StreamingL2BiasAwareSketch(400, 32, 3, seed=5).fit(y)
        a.merge(b)
        direct = L2BiasAwareSketch(400, 32, 3, seed=5).fit(x + y)
        assert a.estimate_bias() == pytest.approx(direct.estimate_bias())
        np.testing.assert_allclose(a.recover(), direct.recover())

    def test_update_and_query_interleaving(self, rng):
        """Algorithm 6: queries can be issued at any point in the stream."""
        streaming = StreamingL2BiasAwareSketch(300, 64, 5, seed=6)
        truth = np.zeros(300)
        for step in range(1_500):
            index = int(rng.integers(0, 300))
            streaming.update(index, 1.0)
            truth[index] += 1.0
            if step % 500 == 499:
                queried = streaming.query(index)
                assert queried == pytest.approx(truth[index], abs=10.0)
