"""Unit tests for the theoretical bounds and parameter recommendations."""

import numpy as np
import pytest

from repro.core import L2BiasAwareSketch
from repro.core.theory import (
    count_median_bound,
    count_sketch_bound,
    guarantee_report,
    l1_bias_aware_bound,
    l2_bias_aware_bound,
    predicted_compression,
    recommend_parameters,
    sketch_size_words,
)
from repro.sketches import CountSketch


class TestBoundValues:
    def test_paper_running_example_scales(self, paper_example_vector):
        """The four bounds on the Eq. (3) example reflect the 700 vs 12 split."""
        report = guarantee_report(paper_example_vector, 2)
        assert report.count_median_bound == pytest.approx(700.0 / 2)
        assert report.count_sketch_bound == pytest.approx(
            np.sqrt(69_428.0) / np.sqrt(2)
        )
        assert report.l1_bias_aware_bound == pytest.approx(12.0 / 2)
        assert report.l2_bias_aware_bound == pytest.approx(
            np.sqrt(28.0) / np.sqrt(2)
        )
        assert report.l1_improvement == pytest.approx(700.0 / 12.0)
        assert report.l2_improvement > 40.0

    def test_bias_aware_bounds_never_exceed_classical_ones(self, rng):
        for _ in range(5):
            x = rng.normal(rng.uniform(-100, 100), 10.0, size=300)
            k = int(rng.integers(1, 30))
            assert l1_bias_aware_bound(x, k) <= count_median_bound(x, k) + 1e-9
            assert l2_bias_aware_bound(x, k) <= count_sketch_bound(x, k) + 1e-9

    def test_improvement_is_one_for_unbiased_sparse_vectors(self):
        x = np.zeros(100)
        x[3] = 50.0
        report = guarantee_report(x, 1)
        assert report.l1_improvement == 1.0
        assert report.l2_improvement == 1.0

    def test_head_size_validation(self, paper_example_vector):
        with pytest.raises(ValueError):
            guarantee_report(paper_example_vector, 10)
        with pytest.raises(ValueError):
            count_median_bound(paper_example_vector, 0)

    def test_measured_errors_respect_the_bounds(self, rng):
        """Measured ℓ∞ errors stay within a small constant of the bound."""
        n, k = 5_000, 16
        x = rng.normal(400.0, 3.0, size=n)
        x[rng.choice(n, k, replace=False)] += 3_000.0
        ours = L2BiasAwareSketch(n, 16 * k, 9, seed=1).fit(x)
        baseline = CountSketch(n, 16 * k, 10, seed=1).fit(x)
        our_error = float(np.max(np.abs(ours.recover() - x)))
        baseline_error = float(np.max(np.abs(baseline.recover() - x)))
        assert our_error <= 20.0 * l2_bias_aware_bound(x, k)
        assert baseline_error <= 20.0 * count_sketch_bound(x, k)


class TestParameterRecommendations:
    def test_width_follows_cs_times_k(self):
        params = recommend_parameters(dimension=1_000_000, head_size=100)
        assert params.width == 400
        assert params.head_size == 100

    def test_depth_scales_with_log_n(self):
        small = recommend_parameters(dimension=1_000, head_size=10)
        large = recommend_parameters(dimension=1_000_000, head_size=10)
        assert large.depth > small.depth

    def test_failure_probability_raises_depth(self):
        loose = recommend_parameters(10_000, 10, failure_probability=0.1)
        tight = recommend_parameters(10_000, 10, failure_probability=1e-6)
        assert tight.depth > loose.depth

    def test_width_factor_below_four_rejected(self):
        with pytest.raises(ValueError, match="width_factor"):
            recommend_parameters(1_000, 10, width_factor=2.0)

    def test_invalid_failure_probability(self):
        with pytest.raises(ValueError):
            recommend_parameters(1_000, 10, failure_probability=0.0)

    def test_words_property_counts_bias_row(self):
        params = recommend_parameters(1_000, 10)
        assert params.words == params.width * (params.depth + 1)

    def test_sketch_size_and_compression(self):
        words = sketch_size_words(dimension=10_000_000, head_size=100)
        assert words < 10_000_000
        assert predicted_compression(10_000_000, 100) == pytest.approx(
            10_000_000 / words
        )
