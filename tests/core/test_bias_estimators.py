"""Unit tests for the bias estimators."""

import numpy as np
import pytest

from repro.core.bias import (
    ExactBiasEstimator,
    MeanEstimator,
    MiddleBucketsMeanEstimator,
    SamplingMedianEstimator,
    make_bias_estimator,
)
from repro.core.errors import optimal_bias
from repro.matrices.cm import CMMatrix


class TestSamplingMedianEstimator:
    def test_estimate_close_to_optimal_bias_on_gaussian(self, rng):
        vector = rng.normal(250.0, 10.0, size=20_000)
        estimator = SamplingMedianEstimator(vector.size, samples=400, seed=1)
        estimate = estimator.estimate_from_vector(vector)
        assert estimate == pytest.approx(250.0, abs=3.0)

    def test_robust_to_outliers_unlike_the_mean(self, rng):
        """Lemma 2/3 in action: a few huge outliers barely move the median."""
        vector = rng.normal(100.0, 5.0, size=10_000)
        vector[:20] = 1e9
        estimator = SamplingMedianEstimator(vector.size, samples=500, seed=2)
        assert estimator.estimate_from_vector(vector) == pytest.approx(100.0, abs=3.0)
        assert abs(np.mean(vector) - 100.0) > 1e5

    def test_streaming_updates_match_vector_ingestion(self, rng):
        vector = rng.poisson(30.0, size=500).astype(float)
        batch = SamplingMedianEstimator(500, samples=64, seed=3)
        batch.ingest_vector(vector)
        streamed = SamplingMedianEstimator(500, samples=64, seed=3)
        for index in np.flatnonzero(vector):
            streamed.update(int(index), float(vector[index]))
        np.testing.assert_allclose(batch.sample_values, streamed.sample_values)
        assert batch.current_estimate() == pytest.approx(streamed.current_estimate())

    def test_merge_adds_sample_values(self, rng):
        x = rng.poisson(5.0, size=200).astype(float)
        y = rng.poisson(7.0, size=200).astype(float)
        merged = SamplingMedianEstimator(200, samples=32, seed=4)
        merged.ingest_vector(x)
        other = SamplingMedianEstimator(200, samples=32, seed=4)
        other.ingest_vector(y)
        merged.merge(other)
        direct = SamplingMedianEstimator(200, samples=32, seed=4)
        direct.ingest_vector(x + y)
        np.testing.assert_allclose(merged.sample_values, direct.sample_values)

    def test_merge_rejects_different_sampling(self):
        a = SamplingMedianEstimator(100, samples=16, seed=1)
        b = SamplingMedianEstimator(100, samples=16, seed=2)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_theta_log_n_sample_count(self):
        estimator = SamplingMedianEstimator.theta_log_n(100_000, seed=0)
        assert estimator.samples == int(np.ceil(20.0 * np.log(100_000)))

    def test_dimension_mismatch_rejected(self):
        estimator = SamplingMedianEstimator(100, samples=8, seed=0)
        with pytest.raises(ValueError):
            estimator.estimate_from_vector(np.ones(99))

    def test_size_in_words(self):
        assert SamplingMedianEstimator(100, samples=37, seed=0).size_in_words() == 37


class TestMiddleBucketsMeanEstimator:
    def _buckets_for(self, vector, buckets, seed):
        matrix = CMMatrix(buckets, vector.size, seed=seed)
        return matrix.apply(vector), matrix.column_sums()

    def test_estimate_close_to_bias_without_outliers(self, rng):
        vector = rng.normal(80.0, 5.0, size=20_000)
        w, pi = self._buckets_for(vector, buckets=64, seed=1)
        estimator = MiddleBucketsMeanEstimator(head_size=16)
        assert estimator.estimate_from_buckets(w, pi) == pytest.approx(80.0, abs=2.0)

    def test_outliers_in_few_buckets_are_excluded(self, rng):
        """Lemma 6: the k contaminated buckets fall outside the middle window."""
        vector = rng.normal(100.0, 5.0, size=20_000)
        vector[:5] = 1e7  # five outliers contaminate at most five buckets
        w, pi = self._buckets_for(vector, buckets=64, seed=2)
        estimator = MiddleBucketsMeanEstimator(head_size=8)
        estimate = estimator.estimate_from_buckets(w, pi)
        assert estimate == pytest.approx(100.0, abs=10.0)

    def test_all_empty_middle_falls_back_to_global_average(self):
        w = np.array([10.0, 0.0, 0.0, 0.0])
        pi = np.array([2.0, 0.0, 0.0, 0.0])
        estimator = MiddleBucketsMeanEstimator(head_size=1)
        # middle buckets (ranks 1..2 of the sort) are empty -> global ratio 10/2
        assert estimator.estimate_from_buckets(w, pi) == pytest.approx(5.0)

    def test_shape_mismatch_rejected(self):
        estimator = MiddleBucketsMeanEstimator(head_size=2)
        with pytest.raises(ValueError):
            estimator.estimate_from_buckets(np.ones(4), np.ones(5))

    def test_estimate_from_vector_is_not_supported(self):
        with pytest.raises(NotImplementedError):
            MiddleBucketsMeanEstimator(head_size=2).estimate_from_vector(np.ones(10))


class TestMeanEstimator:
    def test_matches_numpy_mean(self, rng):
        vector = rng.normal(size=300)
        estimator = MeanEstimator(300)
        assert estimator.estimate_from_vector(vector) == pytest.approx(vector.mean())

    def test_streaming_updates_accumulate(self):
        estimator = MeanEstimator(10)
        estimator.update(0, 5.0)
        estimator.update(3, 15.0)
        assert estimator.current_estimate() == pytest.approx(2.0)

    def test_merge_and_scale_are_linear(self, rng):
        x = rng.normal(size=50)
        y = rng.normal(size=50)
        a = MeanEstimator(50)
        a.ingest_vector(x)
        b = MeanEstimator(50)
        b.ingest_vector(y)
        a.merge(b)
        assert a.current_estimate() == pytest.approx(np.mean(x + y))
        a.scale(2.0)
        assert a.current_estimate() == pytest.approx(2.0 * np.mean(x + y))

    def test_not_robust_to_outliers(self, rng):
        """The documented failure mode (Section 4.1)."""
        vector = rng.normal(50.0, 1.0, size=1_000)
        vector[0] = 1e9
        estimator = MeanEstimator(1_000)
        assert abs(estimator.estimate_from_vector(vector) - 50.0) > 1e5


class TestExactAndFactory:
    def test_exact_estimator_matches_optimal_bias(self, paper_example_vector):
        estimator = ExactBiasEstimator(head_size=2, p=1)
        assert estimator.estimate_from_vector(paper_example_vector) == pytest.approx(
            optimal_bias(paper_example_vector, 2, 1).beta
        )

    def test_factory_builds_every_kind(self):
        for kind in ("sampling_median", "mean", "exact_l1", "exact_l2"):
            estimator = make_bias_estimator(kind, dimension=100, head_size=5, seed=0)
            assert estimator is not None

    def test_factory_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown bias estimator"):
            make_bias_estimator("bogus", dimension=10)

    def test_exact_requires_head_size(self):
        with pytest.raises(ValueError):
            make_bias_estimator("exact_l1", dimension=10)
