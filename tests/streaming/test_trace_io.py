"""Unit tests for trace reading/writing."""

import numpy as np
import pytest

from repro.streaming.stream import StreamKind, UpdateStream
from repro.streaming.trace import (
    read_csv_trace,
    read_npz_trace,
    write_csv_trace,
    write_npz_trace,
)


@pytest.fixture
def sample_stream(rng):
    stream = UpdateStream(50, kind=StreamKind.TURNSTILE)
    for _ in range(200):
        stream.append((int(rng.integers(0, 50)), float(rng.normal(0.0, 3.0))))
    return stream


class TestCsvTrace:
    def test_round_trip(self, sample_stream, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv_trace(sample_stream, path)
        loaded = read_csv_trace(path)
        assert loaded.dimension == sample_stream.dimension
        assert loaded.kind == sample_stream.kind
        np.testing.assert_array_equal(loaded.indices(), sample_stream.indices())
        np.testing.assert_allclose(loaded.deltas(), sample_stream.deltas())

    def test_integer_deltas_written_compactly(self, tmp_path):
        stream = UpdateStream(5, updates=[(0, 3.0), (1, 7.0)])
        path = tmp_path / "trace.csv"
        write_csv_trace(stream, path)
        body = path.read_text().splitlines()[1:]
        assert body == ["0,3", "1,7"]

    def test_header_required(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("0,1\n")
        with pytest.raises(ValueError, match="header"):
            read_csv_trace(path)

    def test_malformed_line_reports_line_number(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("# dimension=5 kind=cash_register\n0,1\nnot-a-line\n")
        with pytest.raises(ValueError, match="line 3"):
            read_csv_trace(path)

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "# dimension=5 kind=cash_register\n\n# a comment\n2,4\n"
        )
        stream = read_csv_trace(path)
        assert len(stream) == 1
        assert stream[0].index == 2


class TestNpzTrace:
    def test_round_trip(self, sample_stream, tmp_path):
        path = tmp_path / "trace.npz"
        write_npz_trace(sample_stream, path)
        loaded = read_npz_trace(path)
        assert loaded.dimension == sample_stream.dimension
        assert loaded.kind == sample_stream.kind
        np.testing.assert_allclose(loaded.deltas(), sample_stream.deltas())

    def test_accumulated_vector_preserved(self, sample_stream, tmp_path):
        path = tmp_path / "trace.npz"
        write_npz_trace(sample_stream, path)
        loaded = read_npz_trace(path)
        np.testing.assert_allclose(
            loaded.accumulate(), sample_stream.accumulate()
        )
