"""Unit tests for the sliding-window engine (``repro.streaming.windows``)."""

import numpy as np
import pytest

from repro.api import CapabilityError, ConfigError, SketchConfig, SketchSession
from repro.serialization import SerializationError
from repro.streaming import SlidingWindowSketch, WindowSpec, is_window_payload

DIMENSION = 500


def config(name="count_min", seed=11, **window_fields):
    window = WindowSpec(**window_fields) if window_fields else None
    return SketchConfig(name, dimension=DIMENSION, width=32, depth=3,
                        seed=seed, window=window)


def sliding(panes=3, pane_size=10, **kwargs):
    return SlidingWindowSketch(
        config(mode="sliding", panes=panes, pane_size=pane_size, **kwargs)
    )


class TestWindowSpecValidation:
    def test_valid_specs_normalise_their_fields(self):
        spec = WindowSpec(mode="sliding", panes=np.int64(4), pane_size=np.int64(8))
        assert spec.panes == 4 and isinstance(spec.panes, int)
        assert spec.pane_size == 8 and isinstance(spec.pane_size, int)
        assert spec.span == 32
        timed = WindowSpec(mode="tumbling", pane_size=2.5, by="time")
        assert timed.pane_size == 2.5

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError, match="unknown window mode"):
            WindowSpec(mode="hopping", pane_size=4)

    def test_unknown_unit_rejected(self):
        with pytest.raises(ConfigError, match="by="):
            WindowSpec(pane_size=4, by="bytes")

    @pytest.mark.parametrize("pane_size", [0, -3, 2.5, True, "10"])
    def test_count_pane_size_must_be_positive_integer(self, pane_size):
        with pytest.raises(ConfigError, match="pane_size"):
            WindowSpec(mode="sliding", pane_size=pane_size)

    @pytest.mark.parametrize("pane_size", [0.0, -1.0, float("inf"), float("nan")])
    def test_time_pane_size_must_be_positive_finite(self, pane_size):
        with pytest.raises(ConfigError, match="positive finite"):
            WindowSpec(pane_size=pane_size, by="time")

    def test_panes_only_apply_to_sliding(self):
        with pytest.raises(ConfigError, match="exactly one pane"):
            WindowSpec(mode="tumbling", panes=4, pane_size=10)
        with pytest.raises(ConfigError, match="exactly one pane"):
            WindowSpec(mode="decay", panes=4, pane_size=10, decay=0.5)

    @pytest.mark.parametrize("decay", [None, 0.0, 1.0, -0.5, 2.0, "0.9"])
    def test_decay_factor_must_be_in_open_unit_interval(self, decay):
        with pytest.raises(ConfigError, match="decay"):
            WindowSpec(mode="decay", pane_size=10, decay=decay)

    def test_decay_forbidden_outside_decay_mode(self):
        with pytest.raises(ConfigError, match="only applies to decay"):
            WindowSpec(mode="sliding", panes=2, pane_size=10, decay=0.5)

    def test_dict_round_trip(self):
        spec = WindowSpec(mode="decay", pane_size=7, decay=0.75)
        assert WindowSpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(ConfigError, match="unknown window spec"):
            WindowSpec.from_dict({"mode": "sliding", "pane_size": 1, "hop": 2})


class TestConfigIntegration:
    def test_window_field_accepts_spec_or_dict(self):
        spec = WindowSpec(mode="sliding", panes=2, pane_size=5)
        by_spec = config(mode="sliding", panes=2, pane_size=5)
        by_dict = SketchConfig("count_min", dimension=DIMENSION, width=32,
                               depth=3, seed=11, window=spec.to_dict())
        assert by_spec == by_dict
        assert by_spec.window == spec
        assert by_spec.replace(window=None).window is None

    def test_window_field_rejects_junk(self):
        with pytest.raises(ConfigError, match="WindowSpec"):
            SketchConfig("count_min", dimension=DIMENSION, width=32, depth=3,
                         seed=1, window="sliding:16")

    @pytest.mark.parametrize("name", ["count_min_cu", "count_min_log_cu"])
    def test_non_linear_sketches_cannot_be_windowed(self, name):
        with pytest.raises(CapabilityError, match="pane-merge algebra"):
            SketchConfig(name, dimension=DIMENSION, width=32, depth=3, seed=1,
                         window=WindowSpec(pane_size=10))

    def test_windowed_config_requires_integer_seed(self):
        with pytest.raises(ConfigError, match="integer seed"):
            SketchConfig("count_min", dimension=DIMENSION, width=32, depth=3,
                         window=WindowSpec(pane_size=10))


class TestPaneRotation:
    def test_tumbling_window_resets_at_each_boundary(self):
        window = SlidingWindowSketch(
            config(mode="tumbling", pane_size=10)
        )
        for _ in range(10):
            window.update(3)
        # the boundary closed (and discarded) the full pane
        assert window.pane_closes == 1
        assert window.evictions == 1
        assert window.items_in_window == 0
        assert window.query(3) == 0.0
        window.update(3)
        assert window.query(3) == 1.0

    def test_sliding_window_evicts_oldest_pane(self):
        window = sliding(panes=3, pane_size=10)
        for index in range(50):            # updates 0..49, panes of 10
            window.update(index // 10)     # pane p gets 10 updates of key p
        # the key-4 pane just closed into the ring; the ring keeps the two
        # most recent closed panes (keys 3 and 4) plus the empty open pane
        assert window.items_in_window == 20
        assert window.pane_closes == 5
        assert window.evictions == 3
        assert window.query(4) == 10.0
        assert window.query(3) == 10.0
        assert window.query(2) == 0.0      # evicted
        assert window.query(1) == 0.0      # evicted

    def test_decay_fades_history_by_scaling(self):
        window = SlidingWindowSketch(
            config(mode="decay", pane_size=50, decay=0.5)
        )
        for _ in range(100):
            window.update(7)
        # 50 updates scaled twice? boundary at 50 (x0.5 -> 25), 50 more
        # (-> 75), boundary at 100 (x0.5 -> 37.5)
        assert window.query(7) == pytest.approx(37.5)
        assert window.items_in_window == 100   # decay never drops history

    def test_batched_replay_matches_scalar_replay(self, rng):
        indices = rng.integers(0, DIMENSION, size=137)
        deltas = rng.integers(1, 5, size=137).astype(float)
        scalar, batched = sliding(panes=4, pane_size=9), sliding(panes=4, pane_size=9)
        for index, delta in zip(indices, deltas):
            scalar.update(int(index), float(delta))
        batched.update_batch(indices, deltas)
        assert scalar.to_bytes() == batched.to_bytes()

    def test_chunked_batches_match_one_call(self, rng):
        indices = rng.integers(0, DIMENSION, size=230)
        one, chunked = sliding(), sliding()
        one.update_batch(indices)
        chunked.update_batch(indices, batch_size=17)
        assert one.to_bytes() == chunked.to_bytes()


class TestTimeBasedPanes:
    def timed(self, panes=3, pane_size=10.0, mode="sliding"):
        return SlidingWindowSketch(
            config(mode=mode, panes=panes, pane_size=pane_size, by="time")
        )

    def test_updates_land_in_their_timestamp_pane(self):
        window = self.timed()
        window.update(1, timestamp=0.0)
        window.update(1, timestamp=9.9)     # same pane
        window.update(1, timestamp=10.0)    # next pane
        assert window.pane_closes == 1
        assert window.query(1) == 3.0
        window.update(2, timestamp=35.0)    # skips a pane; evicts pane 0
        assert window.query(1) == 1.0       # only the pane-1 update survives
        assert window.query(2) == 1.0

    def test_large_gap_empties_the_window(self):
        window = self.timed()
        for _ in range(5):
            window.update(1, timestamp=1.0)
        window.update(2, timestamp=1e6)
        assert window.query(1) == 0.0
        assert window.query(2) == 1.0

    def test_missing_timestamp_rejected(self):
        with pytest.raises(ConfigError, match="require a timestamp"):
            self.timed().update(1)
        with pytest.raises(ConfigError, match="require a timestamp"):
            self.timed().update_batch([1, 2])

    def test_decreasing_timestamps_rejected(self):
        window = self.timed()
        window.update(1, timestamp=5.0)
        with pytest.raises(ConfigError, match="non-decreasing"):
            window.update(1, timestamp=4.0)
        with pytest.raises(ConfigError, match="non-decreasing"):
            window.update_batch([1, 2], timestamps=[9.0, 8.0])
        with pytest.raises(ConfigError, match="non-decreasing"):
            window.update_batch([1, 2], timestamps=[3.0, 4.0])

    def test_count_panes_reject_timestamps(self):
        window = sliding()
        with pytest.raises(ConfigError, match="no timestamps"):
            window.update(1, timestamp=3.0)
        with pytest.raises(ConfigError, match="no timestamps"):
            window.update_batch([1, 2], timestamps=[1.0, 2.0])

    def test_scalar_timestamp_broadcasts_over_a_batch(self):
        window = self.timed()
        window.update_batch([1, 1, 1], timestamps=3.0)
        assert window.query(1) == 3.0
        assert window.last_timestamp == 3.0

    def test_batched_replay_matches_scalar_replay(self, rng):
        indices = rng.integers(0, DIMENSION, size=120)
        stamps = np.sort(rng.uniform(0.0, 77.0, size=120))
        scalar, batched = self.timed(), self.timed()
        for index, stamp in zip(indices, stamps):
            scalar.update(int(index), timestamp=float(stamp))
        batched.update_batch(indices, timestamps=stamps)
        assert scalar.to_bytes() == batched.to_bytes()

    def test_decay_collapses_large_time_gaps(self):
        window = SlidingWindowSketch(
            config(mode="decay", pane_size=1.0, by="time", decay=0.5)
        )
        window.update(1, delta=1024.0, timestamp=0.0)
        window.update(2, timestamp=100.5)   # 100 boundaries crossed
        assert window.query(1) == pytest.approx(1024.0 * 0.5 ** 100)


class TestEngineGuards:
    def test_engine_requires_window_spec(self):
        with pytest.raises(ConfigError, match="WindowSpec"):
            SlidingWindowSketch(config())

    def test_engine_requires_sketch_config(self):
        with pytest.raises(ConfigError, match="SketchConfig"):
            SlidingWindowSketch("count_min")


class TestWindowWireFormat:
    def make_loaded_window(self, rng):
        window = sliding(panes=4, pane_size=25)
        window.update_batch(rng.integers(0, DIMENSION, size=160),
                            rng.integers(1, 4, size=160).astype(float))
        return window

    def test_round_trip_is_byte_identical_and_resumes(self, rng):
        window = self.make_loaded_window(rng)
        payload = window.to_bytes()
        assert is_window_payload(payload)
        restored = SlidingWindowSketch.from_bytes(payload)
        assert restored.to_bytes() == payload
        assert restored.items_in_window == window.items_in_window
        assert restored.pane_closes == window.pane_closes
        assert restored.evictions == window.evictions
        # further updates evolve identically
        extra = rng.integers(0, DIMENSION, size=60)
        window.update_batch(extra)
        restored.update_batch(extra)
        assert restored.to_bytes() == window.to_bytes()

    def test_bare_sketch_payload_is_not_a_window(self):
        bare = config().build()
        assert not is_window_payload(bare.to_bytes())
        with pytest.raises(SerializationError, match="magic"):
            SlidingWindowSketch.from_bytes(bare.to_bytes())

    def test_truncated_payload_fails_loudly(self, rng):
        payload = self.make_loaded_window(rng).to_bytes()
        with pytest.raises(SerializationError, match="truncated"):
            SlidingWindowSketch.from_bytes(payload[:-7])

    def test_corrupt_header_fails_loudly(self, rng):
        payload = bytearray(self.make_loaded_window(rng).to_bytes())
        payload[12] ^= 0xFF
        with pytest.raises(SerializationError):
            SlidingWindowSketch.from_bytes(bytes(payload))

    def test_future_wire_version_fails_loudly(self, rng):
        payload = bytearray(self.make_loaded_window(rng).to_bytes())
        payload[4:6] = (99).to_bytes(2, "little")
        with pytest.raises(SerializationError, match="version"):
            SlidingWindowSketch.from_bytes(bytes(payload))

    @pytest.mark.parametrize("fill", [-1, 25, 400])
    def test_out_of_range_fill_fails_instead_of_spinning(self, rng, fill):
        """A crafted payload with fill outside [0, pane_size) must be
        rejected at restore — replaying into it would loop forever."""
        window = self.make_loaded_window(rng)     # pane_size = 25
        state = window.state_dict()
        state["meta"]["fill"] = fill
        with pytest.raises(SerializationError, match="fill"):
            SlidingWindowSketch.from_state(state)


class TestSessionIntegration:
    def make_session(self, **window_fields):
        return SketchSession.from_config(config(**window_fields))

    def test_session_routes_queries_through_the_window(self, rng):
        session = self.make_session(mode="sliding", panes=2, pane_size=100)
        session.ingest(rng.integers(0, DIMENSION, size=450))
        assert session.windowed
        assert session.items_processed == 450
        assert session.items_in_window == 150   # 1 closed pane + 50 open
        # session.sketch is the merged window view
        assert session.sketch.items_processed == 150

    def test_save_open_round_trip_preserves_window(self, tmp_path, rng):
        session = self.make_session(mode="sliding", panes=3, pane_size=40)
        session.ingest(rng.integers(0, DIMENSION, size=200))
        path = session.save(tmp_path / "windowed.sketch")
        reopened = SketchSession.open(path)
        assert reopened.windowed
        assert reopened.config == session.config
        assert reopened.to_bytes() == session.to_bytes()
        np.testing.assert_array_equal(reopened.recover(), session.recover())

    def test_sharded_windowed_ingest_matches_inline(self, rng):
        indices = rng.integers(0, DIMENSION, size=2_000)
        inline = self.make_session(mode="sliding", panes=3, pane_size=600)
        inline.ingest(indices)
        sharded = self.make_session(mode="sliding", panes=3, pane_size=600)
        sharded.ingest(indices, shards=2)
        assert sharded.to_bytes() == inline.to_bytes()
        assert sharded.last_shard_report is not None
        # sharding happens within a pane: no shard spans a pane boundary
        assert sharded.last_shard_report.updates <= 600

    def test_auto_shard_decides_per_segment_not_per_batch(self, rng):
        indices = rng.integers(0, DIMENSION, size=5_000)
        session = SketchSession.from_config(
            config(mode="sliding", panes=3, pane_size=300),
            auto_shard_threshold=1_000,
        )
        # the whole batch (5000) exceeds the threshold, but every within-pane
        # segment (<= 300) is far below it: nothing must shard
        session.ingest(indices)
        assert session.last_shard_report is None
        # with panes big enough, the per-segment decision does shard
        import os
        if (os.cpu_count() or 1) > 1:
            session = SketchSession.from_config(
                config(mode="sliding", panes=3, pane_size=4_000),
                auto_shard_threshold=1_000,
            )
            session.ingest(indices)
            assert session.last_shard_report is not None
        # an explicit shards=1 disables auto-sharding entirely
        session = SketchSession.from_config(
            config(mode="sliding", panes=3, pane_size=4_000),
            auto_shard_threshold=1_000,
        )
        session.ingest(indices, shards=1)
        assert session.last_shard_report is None

    def test_dense_vector_streams_into_panes(self, rng):
        vector = np.zeros(DIMENSION)
        hot = rng.choice(DIMENSION, size=80, replace=False)
        vector[hot] = rng.integers(1, 9, size=80).astype(float)
        session = self.make_session(mode="sliding", panes=2, pane_size=30)
        session.ingest(vector)
        assert session.items_processed == 80
        assert session.items_in_window == 50    # 1 closed pane + 20 open

    def test_timestamped_session_ingest(self, rng):
        session = self.make_session(mode="sliding", panes=2, pane_size=5.0,
                                    by="time")
        stamps = np.sort(rng.uniform(0.0, 40.0, size=100))
        session.ingest(rng.integers(0, DIMENSION, size=100), timestamps=stamps)
        assert session.window.last_timestamp == pytest.approx(float(stamps[-1]))
        session.ingest(3, timestamps=float(stamps[-1]) + 1.0)
        assert session.items_processed == 101

    def test_windowed_stream_ingest(self, rng):
        from repro.streaming import UpdateStream

        indices = rng.integers(0, DIMENSION, size=120)
        stream = UpdateStream.from_arrays(DIMENSION, indices)
        session = self.make_session(mode="sliding", panes=2, pane_size=50)
        session.ingest(stream)
        direct = self.make_session(mode="sliding", panes=2, pane_size=50)
        direct.ingest(indices)
        assert session.to_bytes() == direct.to_bytes()


class TestTumblingConservativeUpdate:
    """Tumbling panes never merge, so exact-batchable CU kinds can tumble."""

    CU_KINDS = ["count_min_cu", "count_min_log_cu"]

    @pytest.mark.parametrize("name", CU_KINDS)
    def test_tumbling_cu_window_matches_open_pane_replay(self, name):
        window = SlidingWindowSketch(
            config(name, mode="tumbling", pane_size=25)
        )
        rng = np.random.default_rng(4)
        indices = rng.integers(0, DIMENSION, size=60)
        window.update_batch(indices)
        assert window.pane_count == 1          # the ring never grows
        assert window.items_in_window == 10    # 60 = 2 full panes + 10 open
        # the open pane summarises exactly the updates since the last
        # boundary: replay them into a fresh sketch and compare state
        reference = config(name).build()
        reference.update_batch(indices[50:])
        probe = np.arange(0, DIMENSION, 17)
        np.testing.assert_array_equal(
            window.query_batch(probe), reference.query_batch(probe)
        )

    @pytest.mark.parametrize("name", CU_KINDS)
    def test_tumbling_cu_round_trips_through_wire_format(self, name):
        window = SlidingWindowSketch(
            config(name, mode="tumbling", pane_size=40)
        )
        rng = np.random.default_rng(9)
        window.update_batch(rng.integers(0, DIMENSION, size=90))
        restored = SlidingWindowSketch.from_bytes(window.to_bytes())
        probe = np.arange(0, DIMENSION, 13)
        np.testing.assert_array_equal(
            window.query_batch(probe), restored.query_batch(probe)
        )
        # the restored window continues bit-identically (CML-CU replays the
        # same randomised-rounding draws after restore)
        more = rng.integers(0, DIMENSION, size=35)
        window.update_batch(more)
        restored.update_batch(more)
        assert window.to_bytes() == restored.to_bytes()

    @pytest.mark.parametrize("name", CU_KINDS)
    def test_sliding_and_decay_still_reject_cu_kinds(self, name):
        with pytest.raises(CapabilityError, match="pane-merge algebra"):
            config(name, mode="sliding", panes=2, pane_size=10)
        with pytest.raises(CapabilityError, match="scale"):
            config(name, mode="decay", pane_size=10, decay=0.5)
        # the rejection names the capability that would unlock windowing
        with pytest.raises(CapabilityError, match="tumbling"):
            config(name, mode="sliding", panes=2, pane_size=10)

    @pytest.mark.parametrize("name", CU_KINDS)
    def test_tumbling_cu_window_cannot_shard(self, name):
        window = SlidingWindowSketch(
            config(name, mode="tumbling", pane_size=100)
        )
        with pytest.raises(CapabilityError, match="cannot be sharded"):
            window.update_batch(np.arange(10), shards=4)

    @pytest.mark.parametrize("name", CU_KINDS)
    def test_tumbling_cu_session_end_to_end(self, name):
        session = SketchSession.from_config(
            config(name, mode="tumbling", pane_size=30)
        )
        rng = np.random.default_rng(2)
        session.ingest(rng.integers(0, DIMENSION, size=75))
        assert session.windowed
        assert session.items_in_window == 15
        assert session.query(kind="point", index=3) >= 0.0
