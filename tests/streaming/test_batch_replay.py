"""Batched stream replay: iter_batches, from_arrays, and the batched runner."""

import numpy as np
import pytest

from repro.sketches.count_min import CountMin
from repro.sketches.count_sketch import CountSketch
from repro.streaming.runner import StreamRunner
from repro.streaming.stream import StreamKind, UpdateStream


@pytest.fixture
def stream(rng) -> UpdateStream:
    indices = rng.integers(0, 300, size=5_000)
    deltas = rng.integers(1, 4, size=5_000).astype(np.float64)
    return UpdateStream.from_arrays(300, indices, deltas)


class TestFromArrays:
    def test_round_trips_indices_and_deltas(self, stream):
        assert len(stream) == 5_000
        assert stream.indices().dtype == np.int64
        assert stream.deltas().dtype == np.float64
        first = stream[0]
        assert first.index == int(stream.indices()[0])
        assert first.delta == float(stream.deltas()[0])

    def test_unit_deltas_by_default(self):
        built = UpdateStream.from_arrays(10, np.array([1, 2, 1]))
        assert built.deltas().tolist() == [1.0, 1.0, 1.0]

    def test_rejects_out_of_range_indices(self):
        with pytest.raises(IndexError):
            UpdateStream.from_arrays(10, np.array([0, 10]))

    def test_rejects_negative_deltas_in_cash_register(self):
        with pytest.raises(ValueError):
            UpdateStream.from_arrays(10, np.array([0, 1]), np.array([1.0, -1.0]))
        turnstile = UpdateStream.from_arrays(
            10, np.array([0, 1]), np.array([1.0, -1.0]), kind=StreamKind.TURNSTILE
        )
        assert turnstile.accumulate()[1] == -1.0


class TestIterBatches:
    def test_partitions_the_stream_in_order(self, stream):
        chunks = list(stream.iter_batches(1_024))
        assert sum(len(indices) for indices, _ in chunks) == len(stream)
        reassembled = np.concatenate([indices for indices, _ in chunks])
        np.testing.assert_array_equal(reassembled, stream.indices())

    def test_single_chunk_when_batch_exceeds_stream(self, stream):
        chunks = list(stream.iter_batches(10**6))
        assert len(chunks) == 1

    def test_rejects_non_positive_batch_size(self, stream):
        with pytest.raises(ValueError):
            list(stream.iter_batches(0))

    def test_append_invalidates_cached_arrays(self):
        built = UpdateStream.from_arrays(10, np.array([1, 2]))
        assert len(list(built.iter_batches(10))[0][0]) == 2
        built.append((3, 2.0))
        indices, deltas = next(iter(built.iter_batches(10)))
        assert indices.tolist() == [1, 2, 3]
        assert deltas.tolist() == [1.0, 1.0, 2.0]


class TestBatchedRunner:
    def test_batched_replay_matches_scalar_state(self, stream):
        runner = StreamRunner(stream)
        scalar = runner.run(CountMin(300, 32, 3, seed=4), seed=0)
        batched = runner.run(
            CountMin(300, 32, 3, seed=4), seed=0, batch_size=512
        )
        assert scalar.average_error == batched.average_error
        assert scalar.maximum_error == batched.maximum_error
        assert scalar.updates == batched.updates
        assert scalar.batch_size is None
        assert batched.batch_size == 512

    def test_batched_replay_signed_sketch(self, stream):
        runner = StreamRunner(stream)
        scalar_sketch = CountSketch(300, 32, 3, seed=4)
        batched_sketch = CountSketch(300, 32, 3, seed=4)
        runner.run(scalar_sketch, seed=0)
        runner.run(batched_sketch, seed=0, batch_size=777)
        np.testing.assert_array_equal(scalar_sketch.table, batched_sketch.table)

    def test_rejects_non_positive_batch_size(self, stream):
        runner = StreamRunner(stream)
        with pytest.raises(ValueError):
            runner.run(CountMin(300, 32, 3, seed=4), batch_size=0)
