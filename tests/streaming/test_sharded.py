"""Tests for the multi-core sharded ingestion engine.

The engine's contract: partition an update stream across a persistent pool
of worker processes, scatter-add every shard into a per-worker shared-memory
counter block, fold the blocks into the target with vectorized ``+=`` — and
for linear sketches on integer-weighted streams reach exactly the
single-process state, regardless of shard count.  No counters are
serialized in either direction.
"""

import os
import signal
import time
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.streaming import (
    ShardedIngestPool,
    UpdateStream,
    ingest_stream_sharded,
    shard_arrays,
)
from repro.sketches.registry import make_sketch

DIMENSION = 1_500
WIDTH = 64
DEPTH = 5
SEED = 23


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(77)
    indices = rng.integers(0, DIMENSION, size=20_000).astype(np.int64)
    return UpdateStream.from_arrays(DIMENSION, indices)


def single_process_state(name, stream, batch_size=4_096):
    sketch = make_sketch(name, DIMENSION, WIDTH, DEPTH, seed=SEED)
    for indices, deltas in stream.iter_batches(batch_size):
        sketch.update_batch(indices, deltas)
    return sketch


def assert_segments_released(names):
    """Every named shared-memory segment must be unlinked."""
    for name in names:
        with pytest.raises(FileNotFoundError):
            segment = shared_memory.SharedMemory(name=name)
            segment.close()  # pragma: no cover - only on leak


class TestShardArrays:
    def test_shards_partition_the_stream_in_order(self):
        indices = np.arange(10, dtype=np.int64)
        deltas = np.ones(10)
        pieces = shard_arrays(indices, deltas, 3)
        assert len(pieces) == 3
        np.testing.assert_array_equal(
            np.concatenate([idx for idx, _ in pieces]), indices
        )

    def test_more_shards_than_updates_drops_empty_slices(self):
        # 5-way split of 2 updates must not produce zero-length shards —
        # an empty shard would dispatch a worker task that contributes
        # nothing.
        indices = np.arange(2, dtype=np.int64)
        pieces = shard_arrays(indices, np.ones(2), 5)
        assert sum(idx.size for idx, _ in pieces) == 2
        assert all(idx.size > 0 for idx, _ in pieces)
        assert len(pieces) == 2

    def test_empty_input_yields_no_shards(self):
        pieces = shard_arrays(
            np.empty(0, dtype=np.int64), np.empty(0), 4
        )
        assert pieces == []


class TestShardedIngestion:
    @pytest.mark.parametrize("name", ["count_min", "count_sketch", "l2_sr"])
    @pytest.mark.parametrize("shards", [1, 3])
    def test_matches_single_process_state(self, stream, name, shards):
        report = ingest_stream_sharded(
            stream, name, WIDTH, DEPTH, seed=SEED, shards=shards
        )
        expected = single_process_state(name, stream)
        state_a = report.sketch.state_dict()
        state_b = expected.state_dict()
        for key in state_b["arrays"]:
            np.testing.assert_array_equal(
                state_a["arrays"][key], state_b["arrays"][key]
            )
        assert report.sketch.items_processed == len(stream)

    def test_report_accounting(self, stream):
        report = ingest_stream_sharded(
            stream, "count_min", WIDTH, DEPTH, seed=SEED, shards=4
        )
        assert report.shards == 4
        assert report.updates == len(stream)
        assert sum(report.shard_updates) == len(stream)
        assert report.elapsed_seconds > 0
        # zero-copy engine: only (offset, length) descriptors cross the
        # process boundary — never serialized counters
        assert report.payload_bytes == [0, 0, 0, 0]
        assert report.bytes_crossed == 0
        # phase breakdown: split + workers + fold
        assert report.split_seconds >= 0
        assert report.fold_seconds >= 0
        assert len(report.worker_seconds) == report.workers
        assert all(seconds >= 0 for seconds in report.worker_seconds)

    def test_accepts_raw_arrays(self, stream):
        indices, deltas = stream.indices(), stream.deltas()
        report = ingest_stream_sharded(
            (indices, deltas), "count_min", WIDTH, DEPTH,
            seed=SEED, shards=2, dimension=DIMENSION,
        )
        expected = single_process_state("count_min", stream)
        np.testing.assert_array_equal(report.sketch.table, expected.table)

    def test_raw_arrays_require_dimension(self, stream):
        with pytest.raises(ValueError, match="dimension"):
            ingest_stream_sharded(
                (stream.indices(), stream.deltas()), "count_min",
                WIDTH, DEPTH, seed=SEED, shards=2,
            )

    def test_non_linear_sketch_rejected(self, stream):
        with pytest.raises(ValueError, match="not linear"):
            ingest_stream_sharded(
                stream, "count_min_cu", WIDTH, DEPTH, seed=SEED, shards=2
            )

    def test_explicit_seed_required(self, stream):
        with pytest.raises(ValueError, match="seed"):
            ingest_stream_sharded(
                stream, "count_min", WIDTH, DEPTH, seed=None, shards=2
            )

    def test_turnstile_stream_is_sharded_correctly(self):
        rng = np.random.default_rng(5)
        indices = rng.integers(0, DIMENSION, size=5_000).astype(np.int64)
        deltas = rng.integers(-3, 4, size=5_000).astype(np.float64)
        from repro.streaming import StreamKind

        turnstile = UpdateStream.from_arrays(
            DIMENSION, indices, deltas, kind=StreamKind.TURNSTILE
        )
        report = ingest_stream_sharded(
            turnstile, "count_sketch", WIDTH, DEPTH, seed=SEED, shards=3
        )
        expected = single_process_state("count_sketch", turnstile)
        np.testing.assert_array_equal(report.sketch.table, expected.table)


class TestShardedIngestPool:
    def test_warm_pool_reuse_across_ingests(self, stream):
        """One pool, several ingest() calls folding into one target."""
        indices = stream.indices()
        target = make_sketch("count_min", DIMENSION, WIDTH, DEPTH, seed=SEED)
        with ShardedIngestPool(
            "count_min", DIMENSION, WIDTH, DEPTH, SEED, workers=2
        ) as pool:
            pool.ingest(indices[:8_000], target=target, shards=3)
            pool.ingest(indices[8_000:], target=target, shards=2)
        expected = single_process_state("count_min", stream)
        np.testing.assert_array_equal(target.table, expected.table)
        assert target.items_processed == len(stream)

    def test_more_shards_than_workers_round_robins(self, stream):
        target = make_sketch("count_min", DIMENSION, WIDTH, DEPTH, seed=SEED)
        with ShardedIngestPool(
            "count_min", DIMENSION, WIDTH, DEPTH, SEED, workers=2
        ) as pool:
            report = pool.ingest(stream.indices(), target=target, shards=7)
        assert report.shards == 7
        assert report.workers == 2
        assert len(report.shard_updates) == 7
        expected = single_process_state("count_min", stream)
        np.testing.assert_array_equal(target.table, expected.table)

    def test_more_shards_than_updates(self):
        target = make_sketch("count_min", DIMENSION, WIDTH, DEPTH, seed=SEED)
        with ShardedIngestPool(
            "count_min", DIMENSION, WIDTH, DEPTH, SEED, workers=2
        ) as pool:
            report = pool.ingest(
                np.arange(3, dtype=np.int64), target=target, shards=10
            )
        # only the 3 non-empty slices are dispatched
        assert sum(report.shard_updates) == 3
        assert all(size > 0 for size in report.shard_updates)
        assert target.items_processed == 3

    def test_empty_ingest_is_a_noop(self):
        target = make_sketch("count_min", DIMENSION, WIDTH, DEPTH, seed=SEED)
        with ShardedIngestPool(
            "count_min", DIMENSION, WIDTH, DEPTH, SEED, workers=1
        ) as pool:
            report = pool.ingest(
                np.empty(0, dtype=np.int64), target=target, shards=4
            )
        assert report.updates == 0
        assert report.workers == 0
        assert target.items_processed == 0

    def test_incompatible_target_rejected(self):
        other_seed = make_sketch(
            "count_min", DIMENSION, WIDTH, DEPTH, seed=SEED + 1
        )
        with ShardedIngestPool(
            "count_min", DIMENSION, WIDTH, DEPTH, SEED, workers=1
        ) as pool:
            with pytest.raises(ValueError, match="seed"):
                pool.ingest(
                    np.arange(5, dtype=np.int64), target=other_seed, shards=2
                )

    def test_non_linear_pool_rejected(self):
        with pytest.raises(ValueError, match="not linear"):
            ShardedIngestPool(
                "count_min_cu", DIMENSION, WIDTH, DEPTH, SEED, workers=1
            )

    def test_close_unlinks_every_segment(self, stream):
        pool = ShardedIngestPool(
            "count_min", DIMENSION, WIDTH, DEPTH, SEED, workers=2
        )
        target = make_sketch("count_min", DIMENSION, WIDTH, DEPTH, seed=SEED)
        pool.ingest(stream.indices(), target=target, shards=2)
        names = pool.segment_names()
        assert len(names) == 3  # two worker blocks + the updates segment
        pool.close()
        assert pool.closed
        assert_segments_released(names)
        pool.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            pool.ingest(np.arange(1, dtype=np.int64), target=target)

    def test_worker_crash_aborts_and_releases_memory(self, stream):
        pool = ShardedIngestPool(
            "count_min", DIMENSION, WIDTH, DEPTH, SEED, workers=2
        )
        target = make_sketch("count_min", DIMENSION, WIDTH, DEPTH, seed=SEED)
        pool.ingest(stream.indices()[:100], target=target, shards=2)
        names = pool.segment_names()
        os.kill(pool._processes[0].pid, signal.SIGKILL)
        deadline = time.monotonic() + 5.0
        while pool._processes[0].is_alive() and time.monotonic() < deadline:
            time.sleep(0.01)
        with pytest.raises(RuntimeError, match="broken"):
            pool.ingest(stream.indices(), target=target, shards=2)
        assert pool.closed
        assert_segments_released(names)

    def test_close_during_inflight_ingest_aborts_and_releases_memory(self):
        # regression: close() from another thread used to race the round —
        # _collect_acks polled a concurrently-closed pipe (raw OSError) and
        # the fold could touch unlinked shared memory.  The contract now:
        # the in-flight round aborts with the pool's usual typed
        # RuntimeError (or the next round is refused with ValueError if the
        # close lands between rounds), and by the time close() returns
        # every shared segment is released.
        import threading

        from repro.api import SketchConfig, SketchSession

        session = SketchSession.from_config(
            SketchConfig("count_min", dimension=100_000, width=256, depth=4,
                         seed=SEED)
        )
        rng = np.random.default_rng(7)
        batch = rng.integers(0, 100_000, size=1_000_000).astype(np.int64)
        errors = []

        def keep_ingesting():
            try:
                while True:
                    session.ingest(batch, shards=4)
            except (RuntimeError, ValueError) as error:
                errors.append(error)

        thread = threading.Thread(target=keep_ingesting, daemon=True)
        thread.start()
        deadline = time.monotonic() + 10.0
        pool = None
        while time.monotonic() < deadline:
            pool = session._pool
            if pool is not None and pool._round_active:
                break
            time.sleep(0.002)
        assert pool is not None, "sharded pool never came up"
        names = pool.segment_names()
        assert names, "pool reported no live segments"

        session.close()
        thread.join(timeout=30.0)
        assert not thread.is_alive(), "ingest thread did not abort"
        assert pool.closed
        assert errors, "in-flight ingest survived a concurrent close"
        assert isinstance(errors[0], (RuntimeError, ValueError))
        assert_segments_released(names)

    def test_updates_segment_grows_geometrically(self):
        target = make_sketch("count_min", DIMENSION, WIDTH, DEPTH, seed=SEED)
        rng = np.random.default_rng(3)
        big = rng.integers(0, DIMENSION, size=200_000).astype(np.int64)
        with ShardedIngestPool(
            "count_min", DIMENSION, WIDTH, DEPTH, SEED, workers=2
        ) as pool:
            pool.ingest(big[:10], target=target, shards=2)
            first_updates = pool.segment_names()[-1]
            pool.ingest(big, target=target, shards=2)
            second_updates = pool.segment_names()[-1]
            # growth re-maps under a fresh name; the old segment is unlinked
            assert first_updates != second_updates
            assert_segments_released([first_updates])
        expected = make_sketch("count_min", DIMENSION, WIDTH, DEPTH, seed=SEED)
        expected.update_batch(big[:10])
        expected.update_batch(big)
        np.testing.assert_array_equal(target.table, expected.table)
