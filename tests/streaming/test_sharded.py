"""Tests for the multi-core sharded ingestion engine.

The engine's contract: partition an update stream across worker processes,
sketch every shard with a compatible sketch, merge the *serialized* results
— and for linear sketches on integer-weighted streams reach exactly the
single-process state, regardless of shard count.
"""

import numpy as np
import pytest

from repro.streaming import (
    UpdateStream,
    ingest_stream_sharded,
    shard_arrays,
)
from repro.sketches.registry import make_sketch

DIMENSION = 1_500
WIDTH = 64
DEPTH = 5
SEED = 23


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(77)
    indices = rng.integers(0, DIMENSION, size=20_000).astype(np.int64)
    return UpdateStream.from_arrays(DIMENSION, indices)


def single_process_state(name, stream, batch_size=4_096):
    sketch = make_sketch(name, DIMENSION, WIDTH, DEPTH, seed=SEED)
    for indices, deltas in stream.iter_batches(batch_size):
        sketch.update_batch(indices, deltas)
    return sketch


class TestShardArrays:
    def test_shards_partition_the_stream_in_order(self):
        indices = np.arange(10, dtype=np.int64)
        deltas = np.ones(10)
        pieces = shard_arrays(indices, deltas, 3)
        assert len(pieces) == 3
        np.testing.assert_array_equal(
            np.concatenate([idx for idx, _ in pieces]), indices
        )

    def test_more_shards_than_updates(self):
        indices = np.arange(2, dtype=np.int64)
        pieces = shard_arrays(indices, np.ones(2), 5)
        assert sum(idx.size for idx, _ in pieces) == 2


class TestShardedIngestion:
    @pytest.mark.parametrize("name", ["count_min", "count_sketch", "l2_sr"])
    @pytest.mark.parametrize("shards", [1, 3])
    def test_matches_single_process_state(self, stream, name, shards):
        report = ingest_stream_sharded(
            stream, name, WIDTH, DEPTH, seed=SEED, shards=shards
        )
        expected = single_process_state(name, stream)
        state_a = report.sketch.state_dict()
        state_b = expected.state_dict()
        for key in state_b["arrays"]:
            np.testing.assert_array_equal(
                state_a["arrays"][key], state_b["arrays"][key]
            )
        assert report.sketch.items_processed == len(stream)

    def test_report_accounting(self, stream):
        report = ingest_stream_sharded(
            stream, "count_min", WIDTH, DEPTH, seed=SEED, shards=4
        )
        assert report.shards == 4
        assert report.updates == len(stream)
        assert sum(report.shard_updates) == len(stream)
        assert len(report.payload_bytes) == 4
        assert all(size > 8 * WIDTH * DEPTH for size in report.payload_bytes)
        assert report.elapsed_seconds > 0

    def test_accepts_raw_arrays(self, stream):
        indices, deltas = stream.indices(), stream.deltas()
        report = ingest_stream_sharded(
            (indices, deltas), "count_min", WIDTH, DEPTH,
            seed=SEED, shards=2, dimension=DIMENSION,
        )
        expected = single_process_state("count_min", stream)
        np.testing.assert_array_equal(report.sketch.table, expected.table)

    def test_raw_arrays_require_dimension(self, stream):
        with pytest.raises(ValueError, match="dimension"):
            ingest_stream_sharded(
                (stream.indices(), stream.deltas()), "count_min",
                WIDTH, DEPTH, seed=SEED, shards=2,
            )

    def test_non_linear_sketch_rejected(self, stream):
        with pytest.raises(ValueError, match="not linear"):
            ingest_stream_sharded(
                stream, "count_min_cu", WIDTH, DEPTH, seed=SEED, shards=2
            )

    def test_explicit_seed_required(self, stream):
        with pytest.raises(ValueError, match="seed"):
            ingest_stream_sharded(
                stream, "count_min", WIDTH, DEPTH, seed=None, shards=2
            )

    def test_turnstile_stream_is_sharded_correctly(self):
        rng = np.random.default_rng(5)
        indices = rng.integers(0, DIMENSION, size=5_000).astype(np.int64)
        deltas = rng.integers(-3, 4, size=5_000).astype(np.float64)
        from repro.streaming import StreamKind

        turnstile = UpdateStream.from_arrays(
            DIMENSION, indices, deltas, kind=StreamKind.TURNSTILE
        )
        report = ingest_stream_sharded(
            turnstile, "count_sketch", WIDTH, DEPTH, seed=SEED, shards=3
        )
        expected = single_process_state("count_sketch", turnstile)
        np.testing.assert_array_equal(report.sketch.table, expected.table)
