"""Unit tests for the stream generators."""

import numpy as np
import pytest

from repro.streaming.generators import (
    stream_from_edges,
    stream_from_items,
    stream_from_vector,
)
from repro.streaming.stream import StreamKind


class TestStreamFromVector:
    def test_accumulates_back_to_the_vector(self, rng):
        vector = rng.poisson(3.0, size=50).astype(float)
        stream = stream_from_vector(vector)
        np.testing.assert_allclose(stream.accumulate(), vector)

    def test_one_update_per_nonzero(self, rng):
        vector = rng.poisson(0.5, size=100).astype(float)
        stream = stream_from_vector(vector)
        assert len(stream) == int(np.count_nonzero(vector))

    def test_shuffle_changes_order_not_sum(self, rng):
        vector = rng.poisson(3.0, size=80).astype(float)
        plain = stream_from_vector(vector)
        shuffled = stream_from_vector(vector, shuffle=True, seed=1)
        assert [u.index for u in plain] != [u.index for u in shuffled]
        np.testing.assert_allclose(plain.accumulate(), shuffled.accumulate())

    def test_negative_values_produce_turnstile_stream(self):
        stream = stream_from_vector(np.array([1.0, -2.0, 0.0]))
        assert stream.kind is StreamKind.TURNSTILE


class TestStreamFromItems:
    def test_unit_updates(self):
        stream = stream_from_items([0, 1, 1, 2, 2, 2], dimension=4)
        np.testing.assert_allclose(stream.accumulate(), [1.0, 2.0, 3.0, 0.0])
        assert all(u.delta == 1.0 for u in stream)

    def test_rejects_out_of_range_items(self):
        with pytest.raises(IndexError):
            stream_from_items([0, 5], dimension=3)


class TestStreamFromEdges:
    def test_counts_out_degrees(self):
        edges = [(0, 1), (0, 2), (1, 2), (2, 0), (0, 3)]
        stream = stream_from_edges(edges, dimension=4)
        np.testing.assert_allclose(stream.accumulate(), [3.0, 1.0, 1.0, 0.0])

    def test_destination_is_ignored_for_the_degree_vector(self):
        a = stream_from_edges([(1, 0)], dimension=3)
        b = stream_from_edges([(1, 2)], dimension=3)
        np.testing.assert_allclose(a.accumulate(), b.accumulate())
