"""Golden-state regression for the window wire format.

The fixtures under ``tests/data/golden_window/`` freeze the window wire
format from day one, mirroring ``tests/sketches/test_golden_wire.py``: one
serialized 4-pane sliding window per linear sketch kind, all built from the
same seed and fed the same deterministic integer stream, plus the windowed
point estimates they answered and the ring bookkeeping they recorded.

The tests pin three contracts:

* replaying the generating stream reproduces the *exact* container bytes
  (the encoder is deterministic and the pane routing is stable);
* restoring a golden payload reproduces the exact windowed answers and
  ring bookkeeping (``items_in_window``, pane closes, evictions);
* decode → re-encode is the identity on the stored payloads.

Any change to the container layout, the pane payloads, the JSON header or
the pane-rotation semantics breaks these tests — which is the point: bump
:data:`repro.streaming.windows.WINDOW_WIRE_VERSION` and regenerate the
fixtures deliberately instead of silently shifting the format.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.api import SketchConfig, SketchSession
from repro.sketches.registry import available_sketches, get_spec
from repro.streaming import WindowSpec

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "data" / "golden_window"

#: the exact configuration and stream the fixtures were generated with
DIM, WIDTH, DEPTH, SEED = 256, 16, 3, 20170707
PANES, PANE_SIZE = 4, 50

LINEAR_SKETCHES = [
    name for name in available_sketches() if get_spec(name).linear
]


def golden_stream():
    rng = np.random.default_rng(123)
    indices = rng.integers(0, DIM, size=430)
    deltas = rng.integers(1, 9, size=430).astype(float)
    return indices, deltas


def windowed_session(name):
    return SketchSession.from_config(
        SketchConfig(
            name, dimension=DIM, width=WIDTH, depth=DEPTH, seed=SEED,
            window=WindowSpec(mode="sliding", panes=PANES,
                              pane_size=PANE_SIZE),
        )
    )


@pytest.fixture(scope="module")
def expected():
    return json.loads((GOLDEN_DIR / "expected_queries.json").read_text())


@pytest.mark.parametrize("name", LINEAR_SKETCHES)
def test_replay_reproduces_golden_bytes(name):
    """Same seed + same stream ⇒ byte-identical window container."""
    golden = (GOLDEN_DIR / f"{name}.window").read_bytes()
    indices, deltas = golden_stream()
    session = windowed_session(name)
    for start in range(0, indices.size, 100):
        session.ingest(indices[start:start + 100], deltas[start:start + 100])
    assert session.to_bytes() == golden


@pytest.mark.parametrize("name", LINEAR_SKETCHES)
def test_restored_golden_answers_identically(name, expected):
    """Golden payloads restore to the exact recorded windowed estimates."""
    session = SketchSession.from_bytes(
        (GOLDEN_DIR / f"{name}.window").read_bytes()
    )
    got = [float(session.query(probe)) for probe in expected["probes"]]
    assert got == expected["queries"][name]


@pytest.mark.parametrize("name", LINEAR_SKETCHES)
def test_restored_golden_preserves_ring_bookkeeping(name, expected):
    """The ring resumes exactly where the original left off."""
    session = SketchSession.from_bytes(
        (GOLDEN_DIR / f"{name}.window").read_bytes()
    )
    window = session.window
    meta = expected["meta"][name]
    assert window.items_in_window == meta["items_in_window"]
    assert window.pane_closes == meta["pane_closes"]
    assert window.evictions == meta["evictions"]
    assert window.current_fill == meta["current_fill"]


@pytest.mark.parametrize("name", LINEAR_SKETCHES)
def test_golden_round_trip_is_byte_stable(name):
    """decode → re-encode is the identity on the stored payloads."""
    golden = (GOLDEN_DIR / f"{name}.window").read_bytes()
    assert SketchSession.from_bytes(golden).to_bytes() == golden


@pytest.mark.parametrize("name", LINEAR_SKETCHES)
def test_restored_golden_evolves_like_the_original(name):
    """Further updates after a restore replay exactly as they would have on
    the session that wrote the payload (pane rotation included)."""
    golden = (GOLDEN_DIR / f"{name}.window").read_bytes()
    indices, deltas = golden_stream()
    original = windowed_session(name)
    for start in range(0, indices.size, 100):
        original.ingest(indices[start:start + 100], deltas[start:start + 100])
    restored = SketchSession.from_bytes(golden)
    more = np.arange(60) % DIM
    original.ingest(more, deltas=2.0)
    restored.ingest(more, deltas=2.0)
    assert restored.to_bytes() == original.to_bytes()
