"""Unit tests for the stream replay runner."""

import numpy as np
import pytest

from repro.core import StreamingL2BiasAwareSketch
from repro.sketches import CountSketch
from repro.streaming.generators import stream_from_vector
from repro.streaming.runner import StreamRunner


@pytest.fixture
def stream(rng):
    vector = rng.poisson(25.0, size=400).astype(float)
    return stream_from_vector(vector)


class TestStreamRunner:
    def test_truth_matches_accumulated_stream(self, stream):
        runner = StreamRunner(stream)
        np.testing.assert_allclose(runner.truth, stream.accumulate())

    def test_report_fields_are_sensible(self, stream):
        runner = StreamRunner(stream)
        sketch = CountSketch(400, 64, 5, seed=1)
        report = runner.run(sketch, query_count=50, seed=2)
        assert report.updates == len(stream)
        assert report.queries == 50
        assert report.update_seconds > 0
        assert report.query_seconds > 0
        assert report.average_error >= 0
        assert report.maximum_error >= report.average_error

    def test_explicit_query_indices(self, stream):
        runner = StreamRunner(stream)
        sketch = CountSketch(400, 64, 5, seed=1)
        report = runner.run(sketch, query_indices=[0, 1, 2])
        assert report.queries == 3

    def test_dimension_mismatch_rejected(self, stream):
        runner = StreamRunner(stream)
        with pytest.raises(ValueError, match="dimension"):
            runner.run(CountSketch(401, 64, 5, seed=1))

    def test_streaming_bias_sketch_gets_accurate_state(self, rng):
        vector = rng.normal(100.0, 5.0, size=300)
        stream = stream_from_vector(vector)
        runner = StreamRunner(stream)
        report = runner.run(StreamingL2BiasAwareSketch(300, 64, 5, seed=3))
        assert report.average_error < 5.0

    def test_sketch_name_recorded(self, stream):
        runner = StreamRunner(stream)
        report = runner.run(CountSketch(400, 32, 3, seed=1), query_count=10)
        assert report.sketch_name == "count_sketch"
