"""Unit tests for update streams."""

import numpy as np
import pytest

from repro.streaming.stream import StreamKind, StreamUpdate, UpdateStream


class TestStreamUpdate:
    def test_default_delta_is_one(self):
        assert StreamUpdate(3).delta == 1.0

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            StreamUpdate(-1)


class TestUpdateStream:
    def test_append_accepts_pairs_and_objects(self):
        stream = UpdateStream(10)
        stream.append((1, 2.0))
        stream.append(StreamUpdate(2, 3.0))
        assert len(stream) == 2
        assert stream[0].index == 1 and stream[0].delta == 2.0

    def test_out_of_range_index_rejected(self):
        stream = UpdateStream(5)
        with pytest.raises(IndexError):
            stream.append((5, 1.0))

    def test_cash_register_rejects_negative_delta(self):
        stream = UpdateStream(5, kind=StreamKind.CASH_REGISTER)
        with pytest.raises(ValueError, match="TURNSTILE"):
            stream.append((1, -1.0))

    def test_turnstile_allows_deletions(self):
        stream = UpdateStream(5, kind=StreamKind.TURNSTILE)
        stream.append((1, -2.0))
        assert stream.deltas()[0] == -2.0

    def test_accumulate_matches_manual_sum(self):
        stream = UpdateStream(4, updates=[(0, 1.0), (1, 2.0), (0, 3.0)])
        np.testing.assert_allclose(stream.accumulate(), [4.0, 2.0, 0.0, 0.0])

    def test_accumulate_empty_stream_is_zero_vector(self):
        np.testing.assert_allclose(UpdateStream(3).accumulate(), np.zeros(3))

    def test_prefix(self):
        stream = UpdateStream(4, updates=[(0, 1.0), (1, 2.0), (2, 3.0)])
        prefix = stream.prefix(2)
        assert len(prefix) == 2
        np.testing.assert_allclose(prefix.accumulate(), [1.0, 2.0, 0.0, 0.0])

    def test_split_preserves_total_and_order(self):
        updates = [(i % 7, float(i)) for i in range(50)]
        stream = UpdateStream(7, updates=updates)
        parts = stream.split(4)
        assert sum(len(p) for p in parts) == 50
        total = sum(p.accumulate() for p in parts)
        np.testing.assert_allclose(total, stream.accumulate())

    def test_iteration_preserves_order(self):
        stream = UpdateStream(3, updates=[(2, 1.0), (0, 1.0), (1, 1.0)])
        assert [u.index for u in stream] == [2, 0, 1]

    def test_indices_and_deltas_arrays(self):
        stream = UpdateStream(5, updates=[(4, 2.0), (3, 1.5)])
        np.testing.assert_array_equal(stream.indices(), [4, 3])
        np.testing.assert_allclose(stream.deltas(), [2.0, 1.5])
