"""Unit tests for the k-wise independent hash families."""

import numpy as np
import pytest

from repro.hashing.families import (
    MERSENNE_PRIME_61,
    KWiseHash,
    PairwiseHash,
    hash_family,
)


class TestKWiseHashBasics:
    def test_outputs_in_range(self):
        h = KWiseHash(range_size=17, seed=1)
        values = [h(i) for i in range(500)]
        assert all(0 <= v < 17 for v in values)

    def test_deterministic_given_seed(self):
        a = KWiseHash(64, seed=5)
        b = KWiseHash(64, seed=5)
        assert [a(i) for i in range(100)] == [b(i) for i in range(100)]

    def test_different_seeds_give_different_functions(self):
        a = KWiseHash(1024, seed=1)
        b = KWiseHash(1024, seed=2)
        assert [a(i) for i in range(50)] != [b(i) for i in range(50)]

    def test_rejects_negative_input(self):
        h = KWiseHash(8, seed=0)
        with pytest.raises(ValueError):
            h(-1)

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            KWiseHash(0, seed=0)

    def test_independence_parameter_stored(self):
        h = KWiseHash(8, independence=4, seed=0)
        assert h.independence == 4
        assert len(h.coefficients) == 4


class TestVectorisedAgreement:
    def test_hash_array_matches_scalar(self):
        h = KWiseHash(97, independence=3, seed=11)
        items = np.arange(1_000)
        vectorised = h.hash_array(items)
        scalar = np.array([h(int(i)) for i in items])
        np.testing.assert_array_equal(vectorised, scalar)

    def test_hash_all_equals_hash_array_of_range(self):
        h = PairwiseHash(33, seed=3)
        np.testing.assert_array_equal(h.hash_all(200), h.hash_array(np.arange(200)))

    def test_large_inputs_near_field_size(self):
        h = PairwiseHash(1_000, seed=9)
        large = np.array([MERSENNE_PRIME_61 - 2, MERSENNE_PRIME_61 - 1_000_000])
        vectorised = h.hash_array(large)
        scalar = [h(int(v)) for v in large]
        np.testing.assert_array_equal(vectorised, scalar)

    def test_full_64_bit_inputs_handled_consistently(self):
        """Inputs above the field size are folded by the input mixer + mod p."""
        h = PairwiseHash(10, seed=0)
        huge = np.array([2**64 - 1, 2**63, MERSENNE_PRIME_61], dtype=np.uint64)
        vectorised = h.hash_array(huge)
        scalar = [h(int(v)) for v in huge]
        np.testing.assert_array_equal(vectorised, scalar)
        assert all(0 <= value < 10 for value in vectorised)


class TestDistributionQuality:
    def test_buckets_are_roughly_uniform(self):
        h = PairwiseHash(16, seed=7)
        assignments = h.hash_all(16_000)
        counts = np.bincount(assignments, minlength=16)
        # each bucket expects 1000 items; allow generous slack
        assert counts.min() > 700
        assert counts.max() < 1300

    def test_pairwise_collision_rate_close_to_uniform(self):
        range_size = 128
        trials = 40
        collisions = 0
        pairs = 0
        for seed in range(trials):
            h = PairwiseHash(range_size, seed=seed)
            a, b = h(12345), h(67890)
            collisions += a == b
            pairs += 1
        # expected collision probability 1/128 ≈ 0.008; allow wide slack
        assert collisions / pairs < 0.15


class TestHashFamily:
    def test_family_size(self):
        family = hash_family(5, 32, seed=1)
        assert len(family) == 5

    def test_family_members_are_distinct_functions(self):
        family = hash_family(3, 1_024, seed=2)
        outputs = [tuple(h(i) for i in range(40)) for h in family]
        assert len(set(outputs)) == 3

    def test_family_reproducible(self):
        first = hash_family(4, 64, seed=10)
        second = hash_family(4, 64, seed=10)
        for a, b in zip(first, second):
            assert [a(i) for i in range(30)] == [b(i) for i in range(30)]

    def test_rejects_zero_count(self):
        with pytest.raises(ValueError):
            hash_family(0, 8, seed=0)
