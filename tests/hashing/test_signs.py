"""Unit tests for the random sign functions."""

import numpy as np
import pytest

from repro.hashing.signs import SignHash, sign_family


class TestSignHash:
    def test_values_are_plus_minus_one(self):
        r = SignHash(seed=0)
        values = {r(i) for i in range(200)}
        assert values <= {-1, 1}
        assert values == {-1, 1}  # both signs occur over 200 items

    def test_deterministic_given_seed(self):
        a = SignHash(seed=3)
        b = SignHash(seed=3)
        assert [a(i) for i in range(100)] == [b(i) for i in range(100)]

    def test_sign_array_matches_scalar(self):
        r = SignHash(seed=5)
        items = np.arange(500)
        np.testing.assert_array_equal(
            r.sign_array(items), np.array([r(int(i)) for i in items])
        )

    def test_sign_all_equals_sign_array_of_range(self):
        r = SignHash(seed=7)
        np.testing.assert_array_equal(r.sign_all(300), r.sign_array(np.arange(300)))

    def test_signs_roughly_balanced(self):
        r = SignHash(seed=11)
        signs = r.sign_all(10_000).astype(np.int64)
        # mean should be near zero for a pairwise independent ±1 family
        assert abs(signs.mean()) < 0.1


class TestSignFamily:
    def test_family_size_and_reproducibility(self):
        first = sign_family(4, seed=1)
        second = sign_family(4, seed=1)
        assert len(first) == 4
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.sign_all(50), b.sign_all(50))

    def test_family_members_differ(self):
        family = sign_family(3, seed=9)
        outputs = [tuple(r.sign_all(64)) for r in family]
        assert len(set(outputs)) == 3

    def test_rejects_zero_count(self):
        with pytest.raises(ValueError):
            sign_family(0, seed=0)
