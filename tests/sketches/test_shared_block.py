"""Unit tests for SharedCounterBlock, the shared-memory counter storage.

The block is the storage layer of the zero-copy sharded-ingestion engine:
the parent creates one segment per worker, workers attach by name and bind
their sketch state into the views, and both sides see every write without a
byte crossing a pipe.  These tests exercise the lifecycle single-process
(create → attach → mutate → close → unlink); the cross-process behaviour is
covered by the pool tests in ``tests/streaming/test_sharded.py``.
"""

from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.sketches._tables import HashedCounterTable, SharedCounterBlock

LAYOUT = (
    ("table", (3, 8), "float64"),
    ("samples", (5,), "float64"),
    ("items", (1,), "int64"),
)


class TestLifecycle:
    def test_create_zero_fills_every_field(self):
        with SharedCounterBlock.create(LAYOUT) as block:
            assert block.owner
            assert not block.closed
            for field, shape, dtype in LAYOUT:
                view = block.arrays[field]
                assert view.shape == shape
                assert view.dtype == np.dtype(dtype)
                assert not view.any()

    def test_attach_sees_owner_writes_and_vice_versa(self):
        with SharedCounterBlock.create(LAYOUT) as owner:
            owner.arrays["table"][1, 2] = 7.5
            attached = SharedCounterBlock.attach(owner.name, LAYOUT)
            assert not attached.owner
            assert attached.arrays["table"][1, 2] == 7.5
            attached.arrays["items"][0] = 42
            assert owner.arrays["items"][0] == 42
            attached.close()

    def test_zero_resets_in_place(self):
        with SharedCounterBlock.create(LAYOUT) as block:
            block.arrays["table"][...] = 3.0
            block.arrays["items"][0] = 9
            view = block.arrays["table"]
            block.zero()
            assert not view.any()  # same storage, not a fresh array
            assert block.arrays["items"][0] == 0

    def test_close_invalidates_access(self):
        block = SharedCounterBlock.create(LAYOUT)
        name = block.name
        block.close()
        assert block.closed
        with pytest.raises(ValueError, match="closed"):
            block.arrays
        block.close()  # idempotent
        # close() alone must NOT unlink — the segment is still reachable
        attached = SharedCounterBlock.attach(name, LAYOUT)
        attached.close()
        block.unlink()

    def test_unlink_removes_the_segment(self):
        block = SharedCounterBlock.create(LAYOUT)
        name = block.name
        block.unlink()
        block.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        block.unlink()  # idempotent

    def test_unlink_after_close_still_removes_the_segment(self):
        block = SharedCounterBlock.create(LAYOUT)
        name = block.name
        block.close()
        block.unlink()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_attach_is_not_allowed_to_unlink(self):
        with SharedCounterBlock.create(LAYOUT) as owner:
            attached = SharedCounterBlock.attach(owner.name, LAYOUT)
            attached.unlink()  # silently refused: not the owner
            attached.close()
            again = SharedCounterBlock.attach(owner.name, LAYOUT)
            again.close()

    def test_context_manager_unlinks_on_exit(self):
        with SharedCounterBlock.create(LAYOUT) as block:
            name = block.name
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestLayoutValidation:
    def test_empty_layout_rejected(self):
        with pytest.raises(ValueError, match="at least one field"):
            SharedCounterBlock.create(())

    def test_duplicate_fields_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SharedCounterBlock.create((("a", (2,)), ("a", (3,))))

    def test_dtype_defaults_to_float64(self):
        with SharedCounterBlock.create((("a", (4,)),)) as block:
            assert block.arrays["a"].dtype == np.float64

    def test_attach_rejects_undersized_segment(self):
        small = (("a", (2,)),)
        big = (("a", (1000,)),)
        with SharedCounterBlock.create(small) as block:
            with pytest.raises(ValueError, match="bytes"):
                SharedCounterBlock.attach(block.name, big)

    def test_attach_missing_segment_raises(self):
        with pytest.raises(FileNotFoundError):
            SharedCounterBlock.attach("repro-test-no-such-segment", LAYOUT)

    def test_nbytes_accounts_for_every_field(self):
        with SharedCounterBlock.create(LAYOUT) as block:
            assert block.nbytes == 3 * 8 * 8 + 5 * 8 + 1 * 8


class TestBindBuffer:
    def test_counter_table_writes_through_to_the_block(self):
        table = HashedCounterTable(
            dimension=100, width=8, depth=3, seed=11
        )
        table.add_update(5, 2.0)
        with SharedCounterBlock.create(LAYOUT) as block:
            table.bind_buffer(block.arrays["table"])
            # copy-in preserved the pre-bind state
            assert block.arrays["table"].sum() == pytest.approx(2.0 * 3)
            table.add_update(7, 1.0)
            # post-bind updates land directly in shared memory
            assert block.arrays["table"].sum() == pytest.approx(3.0 * 3)

    def test_bind_rejects_wrong_shape(self):
        table = HashedCounterTable(dimension=100, width=8, depth=3, seed=11)
        with pytest.raises(ValueError, match="shape"):
            table.bind_buffer(np.zeros((2, 8)))

    def test_bind_rejects_wrong_dtype(self):
        table = HashedCounterTable(dimension=100, width=8, depth=3, seed=11)
        with pytest.raises(ValueError, match="float64"):
            table.bind_buffer(np.zeros((3, 8), dtype=np.float32))

    def test_bind_rejects_non_array(self):
        table = HashedCounterTable(dimension=100, width=8, depth=3, seed=11)
        with pytest.raises(TypeError, match="numpy"):
            table.bind_buffer([[0.0] * 8] * 3)
