"""Unit tests for the Deng & Rafiei debiased Count-Min comparator."""

import numpy as np
import pytest

from repro.core import L2BiasAwareSketch
from repro.sketches import CountMin, CountSketch, DebiasedCountMin


class TestDebiasedCountMin:
    def test_total_mass_tracked(self, small_count_vector):
        sketch = DebiasedCountMin(small_count_vector.size, 64, 5, seed=1)
        sketch.fit(small_count_vector)
        assert sketch.total_mass == pytest.approx(small_count_vector.sum())

    def test_less_biased_than_plain_count_min(self, rng):
        """Subtracting the background removes most of the CM over-estimate."""
        vector = rng.poisson(40.0, size=3_000).astype(float)
        plain = CountMin(3_000, 128, 6, seed=3).fit(vector)
        debiased = DebiasedCountMin(3_000, 128, 6, seed=3).fit(vector)
        plain_bias = float(np.mean(plain.recover() - vector))
        debiased_bias = float(np.mean(debiased.recover() - vector))
        assert abs(debiased_bias) < 0.2 * plain_bias

    def test_competitive_with_count_sketch_on_clean_biased_data(self, rng):
        """With no outliers, subtracting the average background works well —
        the correction is at least CS-quality here (the paper's point is that
        this does not survive outliers, covered by the next test)."""
        vector = rng.normal(100.0, 15.0, size=5_000)
        vector = np.maximum(vector, 0.0)
        deng = DebiasedCountMin(5_000, 256, 6, seed=5).fit(vector)
        cs = CountSketch(5_000, 256, 6, seed=5).fit(vector)
        plain = CountMin(5_000, 256, 6, seed=5).fit(vector)
        deng_error = float(np.mean(np.abs(deng.recover() - vector)))
        cs_error = float(np.mean(np.abs(cs.recover() - vector)))
        plain_error = float(np.mean(np.abs(plain.recover() - vector)))
        assert deng_error < 2.0 * cs_error
        assert deng_error < 0.1 * plain_error

    def test_clearly_worse_than_l2_bias_aware_with_outliers(self, biased_gaussian_vector):
        """...and it does not reach the bias-aware sketches when outliers exist."""
        n = biased_gaussian_vector.size
        deng = DebiasedCountMin(n, 256, 6, seed=7).fit(biased_gaussian_vector)
        ours = L2BiasAwareSketch(n, 256, 5, seed=7).fit(biased_gaussian_vector)
        deng_error = float(np.mean(np.abs(deng.recover() - biased_gaussian_vector)))
        our_error = float(np.mean(np.abs(ours.recover() - biased_gaussian_vector)))
        assert our_error < deng_error

    def test_query_matches_recover(self, small_count_vector):
        sketch = DebiasedCountMin(small_count_vector.size, 32, 4, seed=2)
        sketch.fit(small_count_vector)
        recovered = sketch.recover()
        for index in (0, 17, 799):
            assert sketch.query(index) == pytest.approx(recovered[index])

    def test_linearity_merge_and_scale(self, rng):
        x = rng.poisson(10.0, size=500).astype(float)
        y = rng.poisson(5.0, size=500).astype(float)
        merged = DebiasedCountMin(500, 64, 4, seed=9).fit(x)
        merged.merge(DebiasedCountMin(500, 64, 4, seed=9).fit(y))
        direct = DebiasedCountMin(500, 64, 4, seed=9).fit(x + y)
        np.testing.assert_allclose(merged.recover(), direct.recover())
        assert merged.total_mass == pytest.approx(direct.total_mass)

        scaled = DebiasedCountMin(500, 64, 4, seed=9).fit(x).scale(2.0)
        np.testing.assert_allclose(
            scaled.recover(), DebiasedCountMin(500, 64, 4, seed=9).fit(2 * x).recover()
        )

    def test_size_counts_the_mass_register(self):
        sketch = DebiasedCountMin(100, 32, 3, seed=0)
        assert sketch.size_in_words() == 32 * 3 + 1

    def test_registered_in_registry(self):
        from repro.sketches.registry import get_spec, make_sketch

        spec = get_spec("debiased_count_min")
        assert spec.linear is True
        assert spec.bias_aware is False
        sketch = make_sketch("debiased_count_min", 100, 16, 3, seed=0)
        assert isinstance(sketch, DebiasedCountMin)
