"""Unit tests for the state protocol and the binary wire format.

The property suite (tests/property/test_serialization_properties.py) checks
round-trip fidelity across randomised inputs for every registered sketch;
this file pins down the protocol mechanics: the wire framing, the version
and kind validation, the word accounting, and the failure modes.
"""

import numpy as np
import pytest

from repro import serialization
from repro.compressive import GaussianSketch
from repro.core import L1BiasAwareSketch, StreamingL2BiasAwareSketch
from repro.serialization import (
    WIRE_MAGIC,
    WIRE_VERSION,
    SerializationError,
    decode_state,
    payload_word_count,
    registered_kinds,
    sketch_from_bytes,
    state_word_count,
)
from repro.sketches import CountMin, CountMinCU, CountMinLogCU, CountSketch
from repro.sketches.registry import available_sketches, make_sketch

DIMENSION = 200
WIDTH = 32
DEPTH = 4
SEED = 99


def small_sketch(cls=CountMin, seed=SEED):
    sketch = cls(DIMENSION, WIDTH, DEPTH, seed=seed)
    rng = np.random.default_rng(7)
    sketch.update_batch(rng.integers(0, DIMENSION, size=300), np.ones(300))
    return sketch


class TestWireFraming:
    def test_payload_starts_with_magic_and_version(self):
        payload = small_sketch().to_bytes()
        assert payload[:4] == WIRE_MAGIC
        assert int.from_bytes(payload[4:6], "little") == WIRE_VERSION

    def test_bad_magic_rejected(self):
        payload = bytearray(small_sketch().to_bytes())
        payload[:4] = b"NOPE"
        with pytest.raises(SerializationError, match="magic"):
            decode_state(bytes(payload))

    def test_unknown_wire_version_rejected(self):
        payload = bytearray(small_sketch().to_bytes())
        payload[4:6] = (WIRE_VERSION + 1).to_bytes(2, "little")
        with pytest.raises(SerializationError, match="version"):
            decode_state(bytes(payload))

    def test_truncated_payload_rejected(self):
        payload = small_sketch().to_bytes()
        with pytest.raises(SerializationError, match="truncated"):
            decode_state(payload[:-16])
        with pytest.raises(SerializationError):
            decode_state(payload[:8])

    def test_encoding_is_deterministic(self):
        a, b = small_sketch(), small_sketch()
        assert a.to_bytes() == b.to_bytes()

    def test_reencode_is_byte_identical(self):
        payload = small_sketch().to_bytes()
        assert sketch_from_bytes(payload).to_bytes() == payload


class TestStateDictContract:
    def test_state_dict_has_fixed_keys(self):
        state = small_sketch().state_dict()
        assert set(state) == {
            "kind", "state_version", "config", "scalars", "meta", "arrays",
        }
        assert state["kind"] == "count_min"
        assert state["meta"]["items_processed"] == 300

    def test_state_dict_arrays_are_snapshots(self):
        sketch = small_sketch()
        state = sketch.state_dict()
        state["arrays"]["table"][:] = -1.0
        assert np.all(sketch.table >= 0.0)

    def test_unknown_kind_rejected(self):
        state = small_sketch().state_dict()
        state["kind"] = "no_such_sketch"
        with pytest.raises(SerializationError, match="no_such_sketch"):
            serialization.sketch_from_state(state)

    def test_newer_state_version_rejected(self):
        state = small_sketch().state_dict()
        state["state_version"] = CountMin.state_version + 1
        with pytest.raises(ValueError, match="state_version"):
            CountMin.from_state(state)

    def test_older_state_version_rejected_too(self):
        # any mismatch means the state layout changed; loading across the
        # bump would silently misinterpret arrays, so it must fail loudly
        state = small_sketch().state_dict()
        state["state_version"] = CountMin.state_version - 1
        with pytest.raises(ValueError, match="state_version"):
            CountMin.from_state(state)

    def test_from_state_on_wrong_class_rejected(self):
        state = small_sketch(CountSketch).state_dict()
        with pytest.raises(TypeError, match="CountSketch"):
            CountMin.from_state(state)

    def test_from_state_on_base_class_dispatches(self):
        from repro.sketches.base import Sketch

        state = small_sketch(CountSketch).state_dict()
        restored = Sketch.from_state(state)
        assert isinstance(restored, CountSketch)

    def test_registry_covers_every_registered_sketch(self):
        kinds = set(registered_kinds())
        for name in available_sketches():
            assert name in kinds
        assert "gaussian_sketch" in kinds


class TestSeedRequirements:
    def test_unseeded_sketch_cannot_be_serialized(self):
        with pytest.raises(ValueError, match="seed"):
            CountMin(DIMENSION, WIDTH, DEPTH).to_bytes()

    def test_generator_seeded_sketch_cannot_be_serialized(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError, match="seed"):
            CountMin(DIMENSION, WIDTH, DEPTH, seed=rng).to_bytes()

    def test_numpy_integer_seed_is_accepted(self):
        sketch = CountMin(DIMENSION, WIDTH, DEPTH, seed=np.int64(5))
        restored = CountMin.from_bytes(sketch.to_bytes())
        assert restored.seed == 5

    def test_unseeded_sketch_cannot_be_copied_or_restored(self):
        # restoring counters against freshly drawn hash functions would be
        # silent corruption, so copy()/from_state reject unseeded sketches
        sketch = CountMin(DIMENSION, WIDTH, DEPTH)
        with pytest.raises(ValueError, match="seed"):
            sketch.copy()
        with pytest.raises(ValueError, match="seed"):
            CountMin.from_state(sketch.state_dict())

    def test_unseeded_gaussian_cannot_be_copied(self):
        with pytest.raises(ValueError, match="seed"):
            GaussianSketch(DIMENSION, 8).copy()


class TestWordAccounting:
    def test_measured_words_match_declared_for_all_sketches(self):
        rng = np.random.default_rng(3)
        indices = rng.integers(0, DIMENSION, size=200)
        for name in available_sketches():
            sketch = make_sketch(name, DIMENSION, WIDTH, DEPTH, seed=SEED)
            sketch.update_batch(indices, np.ones(indices.size))
            payload = sketch.to_bytes()
            assert payload_word_count(payload) == sketch.size_in_words(), name
            assert state_word_count(decode_state(payload)) == \
                sketch.size_in_words(), name

    def test_size_in_bytes_is_exact_payload_length(self):
        sketch = small_sketch()
        assert sketch.size_in_bytes() == len(sketch.to_bytes())

    def test_bytes_exceed_word_payload_by_header_only(self):
        # 8 bytes per state word plus a bounded JSON header
        sketch = small_sketch()
        words = sketch.size_in_words()
        assert 8 * words < sketch.size_in_bytes() < 8 * words + 2_000


class TestCopyThroughStateProtocol:
    def test_copy_preserves_queries_and_is_independent(self):
        sketch = small_sketch(L1BiasAwareSketch)
        clone = sketch.copy()
        assert np.array_equal(
            sketch.query_batch(np.arange(DIMENSION)),
            clone.query_batch(np.arange(DIMENSION)),
        )
        clone.update(0, 1000.0)
        assert sketch.query(0) != pytest.approx(clone.query(0))

    def test_conservative_sketches_are_copyable_now(self):
        # CU sketches had no copy() before the state protocol refactor
        sketch = small_sketch(CountMinCU)
        clone = sketch.copy()
        assert np.array_equal(sketch.table, clone.table)
        clone.update(1, 50.0)
        assert not np.array_equal(sketch.table, clone.table)


class TestStreamingVariantsRestoreExactly:
    def test_streaming_l2_bias_is_bit_identical_after_restore(self):
        sketch = StreamingL2BiasAwareSketch(DIMENSION, WIDTH, DEPTH, seed=SEED)
        rng = np.random.default_rng(11)
        for index in rng.integers(0, DIMENSION, size=500):
            sketch.update(int(index), 1.0)
        restored = StreamingL2BiasAwareSketch.from_bytes(sketch.to_bytes())
        assert restored.estimate_bias() == sketch.estimate_bias()
        # the heap membership survives the round trip exactly
        assert np.array_equal(
            restored.bias_heap.locations, sketch.bias_heap.locations
        )
        restored.bias_heap.check_invariants()

    def test_cml_rng_stream_continues_identically(self):
        sketch = small_sketch(CountMinLogCU)
        restored = CountMinLogCU.from_bytes(sketch.to_bytes())
        rng = np.random.default_rng(13)
        for index in rng.integers(0, DIMENSION, size=200):
            sketch.update(int(index), 1.0)
            restored.update(int(index), 1.0)
        assert np.array_equal(sketch.table, restored.table)


class TestGaussianSketchState:
    def test_round_trip_and_merge(self):
        rng = np.random.default_rng(17)
        x = rng.poisson(10.0, size=DIMENSION).astype(float)
        sketch = GaussianSketch(DIMENSION, 16, seed=SEED).fit(x)
        restored = GaussianSketch.from_bytes(sketch.to_bytes())
        assert np.array_equal(
            restored.measurements_vector, sketch.measurements_vector
        )
        restored.merge(sketch)
        assert np.allclose(
            restored.measurements_vector, 2.0 * sketch.measurements_vector
        )

    def test_dispatch_through_generic_loader(self):
        sketch = GaussianSketch(DIMENSION, 8, seed=3)
        restored = sketch_from_bytes(sketch.to_bytes())
        assert isinstance(restored, GaussianSketch)
