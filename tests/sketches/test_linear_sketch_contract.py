"""Contract tests shared by every linear sketch in the library.

These tests are parametrised over all linear sketch classes (baselines and
bias-aware) and check the properties that the distributed and streaming
substrates depend on: streaming/vectorised equivalence, mergeability,
scaling, copying, and exact recovery of sparse vectors.
"""

import numpy as np
import pytest

from repro.core import (
    L1BiasAwareSketch,
    L1MeanSketch,
    L2BiasAwareSketch,
    L2MeanSketch,
    StreamingL1BiasAwareSketch,
    StreamingL2BiasAwareSketch,
)
from repro.sketches import CountMedian, CountMin, CountSketch, DebiasedCountMin

LINEAR_SKETCHES = [
    CountMin,
    CountMedian,
    CountSketch,
    DebiasedCountMin,
    L1BiasAwareSketch,
    L2BiasAwareSketch,
    L1MeanSketch,
    L2MeanSketch,
    StreamingL1BiasAwareSketch,
    StreamingL2BiasAwareSketch,
]

DIMENSION = 300


def build(sketch_class, seed=123, width=64, depth=5):
    return sketch_class(DIMENSION, width, depth, seed=seed)


@pytest.fixture
def count_vector(rng):
    return rng.poisson(20.0, size=DIMENSION).astype(float)


@pytest.mark.parametrize("sketch_class", LINEAR_SKETCHES)
class TestLinearSketchContract:
    def test_fit_equals_streaming_updates(self, sketch_class, count_vector):
        batch = build(sketch_class).fit(count_vector)
        streamed = build(sketch_class)
        for index in np.flatnonzero(count_vector):
            streamed.update(int(index), float(count_vector[index]))
        np.testing.assert_allclose(batch.recover(), streamed.recover())

    def test_merge_equals_sketch_of_sum(self, sketch_class, count_vector, rng):
        other_vector = rng.poisson(10.0, size=DIMENSION).astype(float)
        merged = build(sketch_class).fit(count_vector)
        merged.merge(build(sketch_class).fit(other_vector))
        direct = build(sketch_class).fit(count_vector + other_vector)
        np.testing.assert_allclose(merged.recover(), direct.recover())

    def test_add_operator_does_not_mutate_operands(self, sketch_class, count_vector):
        a = build(sketch_class).fit(count_vector)
        b = build(sketch_class).fit(count_vector)
        before = a.recover().copy()
        _ = a + b
        np.testing.assert_allclose(a.recover(), before)

    def test_scale_matches_scaled_vector(self, sketch_class, count_vector):
        scaled = build(sketch_class).fit(count_vector).scale(3.0)
        direct = build(sketch_class).fit(3.0 * count_vector)
        np.testing.assert_allclose(scaled.recover(), direct.recover())

    def test_copy_is_independent(self, sketch_class, count_vector):
        original = build(sketch_class).fit(count_vector)
        clone = original.copy()
        clone.update(0, 1_000.0)
        assert original.query(0) != pytest.approx(clone.query(0))

    def test_merge_rejects_different_seeds(self, sketch_class, count_vector):
        a = build(sketch_class, seed=1).fit(count_vector)
        b = build(sketch_class, seed=2).fit(count_vector)
        with pytest.raises(ValueError, match="seed"):
            a.merge(b)

    def test_merge_rejects_mismatched_shape(self, sketch_class, count_vector):
        a = build(sketch_class, width=64).fit(count_vector)
        b = build(sketch_class, width=32).fit(count_vector)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_rejects_other_type(self, sketch_class, count_vector):
        a = build(sketch_class).fit(count_vector)
        other_class = CountMedian if sketch_class is not CountMedian else CountSketch
        b = other_class(DIMENSION, 64, 5, seed=123).fit(count_vector)
        with pytest.raises(TypeError):
            a.merge(b)

    def test_recovery_of_very_sparse_vector(self, sketch_class):
        """A 2-sparse vector is recovered (near-)exactly by every sketch.

        The classical sketches and ℓ1/ℓ2-S/R recover it exactly (their bias
        estimates are 0 here); the mean heuristics carry a small residual of
        the order of the vector mean (59/300 ≈ 0.2), hence the 0.5 tolerance.
        """
        sparse = np.zeros(DIMENSION)
        sparse[7] = 42.0
        sparse[200] = 17.0
        sketch = build(sketch_class, width=128, depth=7).fit(sparse)
        assert sketch.query(7) == pytest.approx(42.0, abs=0.5)
        assert sketch.query(200) == pytest.approx(17.0, abs=0.5)

    def test_query_index_validation(self, sketch_class, count_vector):
        sketch = build(sketch_class).fit(count_vector)
        with pytest.raises(IndexError):
            sketch.query(DIMENSION)
        with pytest.raises(IndexError):
            sketch.query(-1)

    def test_size_in_words_positive_and_scales_with_width(self, sketch_class):
        small = build(sketch_class, width=32)
        large = build(sketch_class, width=64)
        assert 0 < small.size_in_words() < large.size_in_words()

    def test_items_processed_counts_updates(self, sketch_class, count_vector):
        sketch = build(sketch_class)
        sketch.update(1, 2.0)
        sketch.update(2, 3.0)
        assert sketch.items_processed == 2
