"""Unit tests specific to the Count-Min baseline."""

import numpy as np
import pytest

from repro.sketches import CountMin


class TestCountMinEstimation:
    def test_never_underestimates_nonnegative_vectors(self, small_count_vector):
        sketch = CountMin(small_count_vector.size, 32, 4, seed=1)
        sketch.fit(small_count_vector)
        recovered = sketch.recover()
        assert np.all(recovered >= small_count_vector - 1e-9)

    def test_rejects_negative_vector_in_fit(self):
        sketch = CountMin(10, 8, 2, seed=0)
        with pytest.raises(ValueError, match="non-negative"):
            sketch.fit(np.array([1.0, -1.0] + [0.0] * 8))

    def test_rejects_negative_scaling(self, small_count_vector):
        sketch = CountMin(small_count_vector.size, 32, 4, seed=1)
        sketch.fit(small_count_vector)
        with pytest.raises(ValueError):
            sketch.scale(-1.0)

    def test_overestimate_shrinks_with_width(self, rng):
        vector = rng.poisson(10.0, size=1_000).astype(float)
        narrow = CountMin(1_000, 16, 5, seed=3).fit(vector)
        wide = CountMin(1_000, 256, 5, seed=3).fit(vector)
        narrow_error = np.mean(narrow.recover() - vector)
        wide_error = np.mean(wide.recover() - vector)
        assert wide_error < narrow_error

    def test_exact_on_isolated_heavy_item(self):
        vector = np.zeros(500)
        vector[123] = 999.0
        sketch = CountMin(500, 64, 5, seed=9).fit(vector)
        assert sketch.query(123) == pytest.approx(999.0)

    def test_merge_matches_union_stream(self, rng):
        a_vec = rng.poisson(3.0, size=200).astype(float)
        b_vec = rng.poisson(3.0, size=200).astype(float)
        merged = CountMin(200, 32, 4, seed=5).fit(a_vec)
        merged.merge(CountMin(200, 32, 4, seed=5).fit(b_vec))
        direct = CountMin(200, 32, 4, seed=5).fit(a_vec + b_vec)
        np.testing.assert_allclose(merged.recover(), direct.recover())
