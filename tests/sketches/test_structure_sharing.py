"""Data-independent structure is shared, not duplicated, across replicas.

``copy()`` / ``from_state`` / ``from_bytes`` rebuild a sketch from its seed.
Before this refactor every rebuild re-materialised the O(n) structure arrays
(dense buckets and, for the bias-aware sketches, the π/ψ column sums) —
sharded ingestion paid that duplication once per worker payload merged.
Now the dense tables are gone entirely, and the remaining O(width) column
sums are memoised by structural identity: replicas built from the same
integer seed share one read-only array.
"""

import numpy as np
import pytest

from repro.core import L1BiasAwareSketch, L2BiasAwareSketch
from repro.sketches._tables import HashedCounterTable
from repro.sketches.count_median import CountMedian


class TestColumnSumSharing:
    def test_copies_share_the_column_sums_array(self):
        original = L1BiasAwareSketch(2_000, 64, 5, seed=42)
        original.update(3, 10.0)
        clone = original.copy()
        # identity, not equality: the O(n) scan ran once and the array is
        # shared between the replicas
        assert original._pi is clone._pi

    def test_deserialized_replicas_share_structure(self):
        original = L2BiasAwareSketch(2_000, 64, 5, seed=42)
        original.update(3, 10.0)
        replicas = [
            L2BiasAwareSketch.from_bytes(original.to_bytes())
            for _ in range(3)
        ]
        arrays = {id(replica._psi) for replica in replicas}
        assert len(arrays) == 1
        assert original._psi is replicas[0]._psi

    def test_shared_structure_is_read_only(self):
        sketch = L1BiasAwareSketch(1_000, 32, 3, seed=7)
        with pytest.raises(ValueError):
            sketch._pi[0, 0] = 99.0

    def test_public_accessors_return_private_copies(self):
        """bucket_column_sums stays safely mutable for callers."""
        sketch = CountMedian(1_000, 32, 3, seed=7)
        pi = sketch.bucket_column_sums()
        pi[0, 0] += 1.0  # must not raise, must not corrupt the shared cache
        fresh = CountMedian(1_000, 32, 3, seed=7).bucket_column_sums()
        assert fresh[0, 0] == pi[0, 0] - 1.0

    def test_unseeded_tables_do_not_share(self):
        """Generator-seeded structure is not memoised (not reproducible)."""
        rng = np.random.default_rng(5)
        table = HashedCounterTable(500, 16, 3, seed=rng)
        assert table._structure_key() is None
        first = table.column_sums()
        second = table.column_sums()
        assert first is not second
        np.testing.assert_array_equal(first, second)

    def test_different_seeds_get_different_entries(self):
        a = HashedCounterTable(500, 16, 3, seed=1).column_sums()
        b = HashedCounterTable(500, 16, 3, seed=2).column_sums()
        assert a is not b

    def test_construction_no_longer_pays_the_structure_scan(self):
        """Bias-aware construction is O(depth × width): π is computed lazily."""
        sketch = L1BiasAwareSketch(2_000, 64, 5, seed=13)
        assert sketch._table._cached_column_sums is None
        sketch.query(0)
        assert sketch._table._cached_column_sums is not None
