"""Unit tests for Count-Min-Log with conservative update (CML-CU)."""

import numpy as np
import pytest

from repro.sketches import CountMinLogCU
from repro.sketches.count_min_log import PAPER_BASE


class TestLogCounterArithmetic:
    def test_counter_value_roundtrip(self):
        sketch = CountMinLogCU(10, 8, 2, base=1.1, seed=0)
        for value in [0.0, 1.0, 10.0, 1_000.0, 123_456.0]:
            counter = sketch.value_to_counter(value)
            assert sketch.counter_to_value(counter) == pytest.approx(value, rel=1e-9)

    def test_counter_zero_means_value_zero(self):
        sketch = CountMinLogCU(10, 8, 2, seed=0)
        assert sketch.counter_to_value(0.0) == 0.0
        assert sketch.value_to_counter(0.0) == 0.0

    def test_paper_base_constant(self):
        assert PAPER_BASE == pytest.approx(1.00025)
        sketch = CountMinLogCU(10, 8, 2, seed=0)
        assert sketch.base == pytest.approx(PAPER_BASE)

    def test_rejects_base_at_most_one(self):
        with pytest.raises(ValueError):
            CountMinLogCU(10, 8, 2, base=1.0, seed=0)

    def test_rejects_negative_value_encoding(self):
        sketch = CountMinLogCU(10, 8, 2, seed=0)
        with pytest.raises(ValueError):
            sketch.value_to_counter(-1.0)


class TestCountMinLogEstimation:
    def test_estimates_close_to_truth_with_paper_base(self, rng):
        """With base 1.00025 the log counters are nearly linear counters.

        At a generous width (few collisions per bucket) the conservative-update
        estimates sit close to the true counts.
        """
        vector = rng.poisson(50.0, size=500).astype(float)
        sketch = CountMinLogCU(500, 512, 5, seed=3).fit(vector)
        relative_errors = np.abs(sketch.recover() - vector) / np.maximum(vector, 1.0)
        assert np.median(relative_errors) < 0.25

    def test_tracks_count_min_cu_with_paper_base(self, rng):
        """With base 1.00025 CML-CU behaves like CM-CU up to log-counter noise."""
        from repro.sketches import CountMinCU

        vector = rng.poisson(50.0, size=500).astype(float)
        cml = CountMinLogCU(500, 128, 5, seed=3).fit(vector)
        cmcu = CountMinCU(500, 128, 5, seed=3).fit(vector)
        cml_error = np.mean(np.abs(cml.recover() - vector))
        cmcu_error = np.mean(np.abs(cmcu.recover() - vector))
        assert cml_error == pytest.approx(cmcu_error, rel=0.5)

    def test_larger_base_gives_coarser_estimates(self, rng):
        vector = rng.poisson(100.0, size=400).astype(float)
        fine = CountMinLogCU(400, 256, 5, base=1.00025, seed=1).fit(vector)
        coarse = CountMinLogCU(400, 256, 5, base=2.0, seed=1).fit(vector)
        fine_error = np.mean(np.abs(fine.recover() - vector))
        coarse_error = np.mean(np.abs(coarse.recover() - vector))
        assert fine_error < coarse_error

    def test_counters_are_much_smaller_than_counts_with_large_base(self):
        """The point of log counters: counter magnitude ≈ log_base(count)."""
        sketch = CountMinLogCU(10, 8, 2, base=2.0, seed=0)
        for _ in range(1_000):
            sketch.update(3, 1.0)
        max_counter = float(np.max(sketch.table))
        # the represented value has high variance (that is the price of log
        # counters) but the counter itself stays logarithmic in the count
        assert max_counter <= 20.0

    def test_rejects_negative_updates_and_vectors(self):
        sketch = CountMinLogCU(20, 8, 2, seed=0)
        with pytest.raises(ValueError):
            sketch.update(0, -1.0)
        with pytest.raises(ValueError):
            sketch.fit(np.array([-1.0] + [0.0] * 19))

    def test_merge_raises_type_error(self):
        from repro.api.errors import CapabilityError

        a = CountMinLogCU(20, 8, 2, seed=0)
        b = CountMinLogCU(20, 8, 2, seed=0)
        with pytest.raises(TypeError, match="not linear"):
            a.merge(b)
        # the typed taxonomy: a CapabilityError subclassing TypeError
        with pytest.raises(CapabilityError, match="CountMin"):
            a.merge(b)

    def test_zero_delta_is_a_noop(self):
        sketch = CountMinLogCU(20, 8, 2, seed=0)
        sketch.update(1, 4.0)
        before = sketch.table.copy()
        sketch.update(1, 0.0)
        np.testing.assert_array_equal(sketch.table, before)
