"""Unit tests specific to the Count-Median baseline."""

import numpy as np
import pytest

from repro.core.errors import err_pk
from repro.sketches import CountMedian


class TestCountMedianEstimation:
    def test_handles_negative_coordinates(self, rng):
        """Count-Median works on turnstile (signed) vectors."""
        vector = rng.normal(0.0, 5.0, size=400)
        sketch = CountMedian(400, 128, 7, seed=1).fit(vector)
        errors = np.abs(sketch.recover() - vector)
        assert np.max(errors) < 30.0

    def test_theorem1_error_bound_on_nearly_sparse_vector(self, rng):
        """‖x̂ - x‖∞ should be within O(1/k)·Err_1^k(x) for s = 4k rows.

        We use a vector that is k-sparse plus small noise, so the bound is a
        few times Err_1^k(x)/k, and check a generous constant.
        """
        n, k = 2_000, 10
        vector = rng.normal(0.0, 1.0, size=n)
        heavy = rng.choice(n, size=k, replace=False)
        vector[heavy] += 500.0
        sketch = CountMedian(n, width=8 * k, depth=9, seed=3).fit(vector)
        error = np.max(np.abs(sketch.recover() - vector))
        bound = err_pk(vector, k, 1) / k
        assert error <= 5.0 * bound

    def test_recover_matches_per_index_queries(self, small_count_vector):
        sketch = CountMedian(small_count_vector.size, 64, 5, seed=2)
        sketch.fit(small_count_vector)
        recovered = sketch.recover()
        for index in [0, 5, 100, 799]:
            assert recovered[index] == pytest.approx(sketch.query(index))

    def test_bucket_column_sums_shape_and_total(self, small_count_vector):
        sketch = CountMedian(small_count_vector.size, 64, 5, seed=2)
        pi = sketch.bucket_column_sums()
        assert pi.shape == (5, 64)
        np.testing.assert_allclose(pi.sum(axis=1), small_count_vector.size)

    def test_depth_one_equals_single_bucket_sum(self, rng):
        """With d = 1 the estimate is just the bucket sum (median of one row)."""
        vector = rng.poisson(5.0, size=100).astype(float)
        sketch = CountMedian(100, 16, 1, seed=5).fit(vector)
        assert sketch.table.shape == (1, 16)
        assert sketch.query(3) == pytest.approx(
            sketch.table[0, sketch._table.buckets[0, 3]]
        )

    def test_estimate_is_sum_of_colliding_coordinates(self):
        """In each row the bucket value is exactly the sum of colliding coords."""
        vector = np.arange(1.0, 51.0)
        sketch = CountMedian(50, 8, 3, seed=7).fit(vector)
        buckets = sketch._table.buckets
        for row in range(3):
            for bucket in range(8):
                members = np.flatnonzero(buckets[row] == bucket)
                assert sketch.table[row, bucket] == pytest.approx(
                    vector[members].sum()
                )
