"""Unit tests for the sketch registry."""

import pytest

from repro.sketches.registry import (
    available_sketches,
    get_spec,
    make_sketch,
    mean_heuristic_suite,
    paper_reference_suite,
    register_sketch,
)


class TestRegistryLookup:
    def test_paper_suite_contains_six_algorithms(self):
        suite = paper_reference_suite()
        assert suite == [
            "l1_sr",
            "l2_sr",
            "count_sketch",
            "count_median",
            "count_min_cu",
            "count_min_log_cu",
        ]

    def test_mean_heuristic_suite(self):
        assert mean_heuristic_suite() == ["l1_sr", "l2_sr", "l1_mean", "l2_mean"]

    def test_all_registered_names_buildable(self):
        for name in available_sketches():
            sketch = make_sketch(name, dimension=50, width=8, depth=2, seed=1)
            assert sketch.dimension == 50

    def test_bias_aware_flag(self):
        assert get_spec("l2_sr").bias_aware is True
        assert get_spec("count_sketch").bias_aware is False

    def test_linearity_flag_matches_merge_behaviour(self):
        assert get_spec("count_min_cu").linear is False
        assert get_spec("l1_sr").linear is True

    def test_unknown_name_raises_keyerror_with_suggestions(self):
        with pytest.raises(KeyError, match="available"):
            make_sketch("no_such_sketch", 10, 4, 2)

    def test_baselines_listed_before_bias_aware(self):
        names = available_sketches()
        first_bias_aware = min(
            i for i, name in enumerate(names) if get_spec(name).bias_aware
        )
        last_baseline = max(
            i for i, name in enumerate(names) if not get_spec(name).bias_aware
        )
        assert last_baseline < first_bias_aware

    def test_exclude_bias_aware(self):
        names = available_sketches(include_bias_aware=False)
        assert names
        assert all(not get_spec(name).bias_aware for name in names)


class TestRegistration:
    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_sketch(
                "count_sketch",
                "duplicate",
                lambda n, s, d, seed: None,
                linear=True,
            )

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register_sketch("", "label", lambda n, s, d, seed: None, linear=True)
