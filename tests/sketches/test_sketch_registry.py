"""Unit tests for the capability-aware sketch registry."""

import pytest

from repro.sketches.registry import (
    QUERY_KINDS,
    available_sketches,
    get_spec,
    make_sketch,
    mean_heuristic_suite,
    paper_reference_suite,
    register_sketch,
    unregister_sketch,
)


class TestRegistryLookup:
    def test_paper_suite_contains_six_algorithms(self):
        suite = paper_reference_suite()
        assert suite == [
            "l1_sr",
            "l2_sr",
            "count_sketch",
            "count_median",
            "count_min_cu",
            "count_min_log_cu",
        ]

    def test_mean_heuristic_suite(self):
        assert mean_heuristic_suite() == ["l1_sr", "l2_sr", "l1_mean", "l2_mean"]

    def test_all_registered_names_buildable(self):
        for name in available_sketches():
            sketch = make_sketch(name, dimension=50, width=8, depth=2, seed=1)
            assert sketch.dimension == 50

    def test_bias_aware_flag(self):
        assert get_spec("l2_sr").bias_aware is True
        assert get_spec("count_sketch").bias_aware is False

    def test_linearity_flag_matches_merge_behaviour(self):
        assert get_spec("count_min_cu").linear is False
        assert get_spec("l1_sr").linear is True

    def test_unknown_name_raises_keyerror_with_suggestions(self):
        with pytest.raises(KeyError, match="available"):
            make_sketch("no_such_sketch", 10, 4, 2)

    def test_baselines_listed_before_bias_aware(self):
        names = available_sketches()
        first_bias_aware = min(
            i for i, name in enumerate(names) if get_spec(name).bias_aware
        )
        last_baseline = max(
            i for i, name in enumerate(names) if not get_spec(name).bias_aware
        )
        assert last_baseline < first_bias_aware

    def test_exclude_bias_aware(self):
        names = available_sketches(include_bias_aware=False)
        assert names
        assert all(not get_spec(name).bias_aware for name in names)


class TestRegistration:
    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_sketch(
                "count_sketch",
                "duplicate",
                lambda n, s, d, seed: None,
                linear=True,
            )

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register_sketch("", "label", lambda n, s, d, seed: None, linear=True)

    def test_unknown_query_kind_rejected(self):
        with pytest.raises(ValueError, match="query kinds"):
            register_sketch(
                "bogus_queries_test",
                "label",
                lambda n, s, d, seed: None,
                linear=True,
                queries=frozenset({"point", "telepathy"}),
            )

    def test_unregister(self):
        register_sketch(
            "ephemeral_test", "label", lambda n, s, d, seed: None, linear=True
        )
        assert "ephemeral_test" in available_sketches()
        unregister_sketch("ephemeral_test")
        assert "ephemeral_test" not in available_sketches()


class TestCapabilityMetadata:
    def test_default_capabilities(self):
        spec = get_spec("count_sketch")
        assert spec.streaming is True
        assert spec.queries == frozenset(QUERY_KINDS)
        assert spec.supported_queries() == list(QUERY_KINDS)
        assert spec.kwargs_schema == {}

    def test_declared_kwargs_schemas(self):
        assert get_spec("l2_sr").kwargs_schema == {"head_size": int}
        assert get_spec("l1_sr").kwargs_schema == {"bias_samples": int}
        assert get_spec("count_min_log_cu").kwargs_schema == {"base": float}

    def test_supports_query(self):
        spec = get_spec("l1_sr")
        assert spec.supports_query("range")
        assert not spec.supports_query("telepathy")

    def test_build_validates_kwargs(self):
        spec = get_spec("l2_sr")
        sketch = spec.build(100, 16, 3, seed=1, head_size=4)
        assert sketch.head_size == 4
        with pytest.raises(ValueError, match="does not accept"):
            spec.build(100, 16, 3, seed=1, bogus=1)
        with pytest.raises(TypeError, match="head_size"):
            spec.build(100, 16, 3, seed=1, head_size="four")

    def test_describe_is_plain_data(self):
        description = get_spec("count_min_log_cu").describe()
        assert description["name"] == "count_min_log_cu"
        assert description["linear"] is False
        assert description["queries"] == list(QUERY_KINDS)
        assert description["kwargs"] == {"base": "float"}


class TestDeterministicListings:
    def test_available_sketches_is_stable_and_grouped(self):
        names = available_sketches()
        baselines = [n for n in names if not get_spec(n).bias_aware]
        bias_aware = [n for n in names if get_spec(n).bias_aware]
        assert names == sorted(baselines) + sorted(bias_aware)
        assert names == available_sketches()  # idempotent

    def test_available_datasets_sorted(self):
        from repro.data.registry import available_datasets

        names = available_datasets()
        assert names == sorted(names)

    def test_available_experiments_sorted(self):
        from repro.eval.experiments import available_experiments

        names = available_experiments()
        assert names == sorted(names)
        assert names  # non-empty

    def test_registered_serialization_kinds_sorted(self):
        from repro.serialization import registered_kinds

        names = registered_kinds()
        assert names == sorted(names)


class TestExactBatchCapability:
    def test_linear_kinds_are_exact_batchable_by_default(self):
        for name in available_sketches():
            spec = get_spec(name)
            if spec.linear:
                assert spec.exact_batch, name

    def test_cu_kinds_are_exact_batchable_without_linearity(self):
        for name in ("count_min_cu", "count_min_log_cu"):
            spec = get_spec(name)
            assert spec.exact_batch and not spec.linear, name

    def test_describe_reports_exact_batch(self):
        assert get_spec("count_min_cu").describe()["exact_batch"] is True
        assert get_spec("count_min").describe()["exact_batch"] is True
