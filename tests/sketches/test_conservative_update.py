"""Unit tests for Count-Min with conservative update (CM-CU)."""

import numpy as np
import pytest

from repro.sketches import CountMin, CountMinCU


class TestConservativeUpdate:
    def test_never_underestimates(self, small_count_vector):
        sketch = CountMinCU(small_count_vector.size, 32, 4, seed=1)
        sketch.fit(small_count_vector)
        assert np.all(sketch.recover() >= small_count_vector - 1e-9)

    def test_never_worse_than_plain_count_min(self, rng):
        """Conservative update tightens the Count-Min overestimate pointwise."""
        vector = rng.poisson(15.0, size=600).astype(float)
        cm = CountMin(600, 32, 4, seed=7).fit(vector)
        cu = CountMinCU(600, 32, 4, seed=7).fit(vector)
        assert np.all(cu.recover() <= cm.recover() + 1e-9)
        assert np.mean(cu.recover() - vector) < np.mean(cm.recover() - vector)

    def test_single_item_stream_is_exact(self):
        sketch = CountMinCU(100, 16, 3, seed=0)
        for _ in range(25):
            sketch.update(42, 1.0)
        assert sketch.query(42) == pytest.approx(25.0)

    def test_zero_delta_is_a_noop(self):
        sketch = CountMinCU(50, 8, 3, seed=0)
        sketch.update(1, 5.0)
        before = sketch.table.copy()
        sketch.update(2, 0.0)
        np.testing.assert_array_equal(sketch.table, before)

    def test_rejects_negative_updates(self):
        sketch = CountMinCU(50, 8, 3, seed=0)
        with pytest.raises(ValueError, match="non-negative"):
            sketch.update(3, -1.0)

    def test_rejects_negative_vector(self):
        sketch = CountMinCU(10, 8, 2, seed=0)
        with pytest.raises(ValueError):
            sketch.fit(np.array([1.0, -2.0] + [0.0] * 8))

    def test_merge_raises_type_error(self, small_count_vector):
        """CM-CU is not linear — the library refuses to merge it.

        The refusal is the typed :class:`CapabilityError` (a ``TypeError``
        subclass, so legacy ``except TypeError`` callers keep working) and
        names the linear replacements.
        """
        from repro.api.errors import CapabilityError

        a = CountMinCU(small_count_vector.size, 32, 4, seed=1).fit(small_count_vector)
        b = CountMinCU(small_count_vector.size, 32, 4, seed=1).fit(small_count_vector)
        with pytest.raises(TypeError, match="not linear"):
            a.merge(b)
        with pytest.raises(CapabilityError, match="CountMin"):
            a.merge(b)

    def test_order_dependence_is_possible_but_estimates_stay_upper_bounds(self, rng):
        """CU is order dependent; regardless of order it never under-counts."""
        vector = rng.poisson(8.0, size=200).astype(float)
        forward = CountMinCU(200, 16, 3, seed=5)
        backward = CountMinCU(200, 16, 3, seed=5)
        nonzero = np.flatnonzero(vector)
        for index in nonzero:
            forward.update(int(index), float(vector[index]))
        for index in reversed(nonzero):
            backward.update(int(index), float(vector[index]))
        assert np.all(forward.recover() >= vector - 1e-9)
        assert np.all(backward.recover() >= vector - 1e-9)
