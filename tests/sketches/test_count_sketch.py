"""Unit tests specific to the Count-Sketch baseline."""

import numpy as np
import pytest

from repro.core.errors import err_pk
from repro.sketches import CountMedian, CountSketch


class TestCountSketchEstimation:
    def test_estimates_are_unbiased_across_hash_draws(self, rng):
        """E[x̂_i] = x_i over independent hash functions (sign cancellation)."""
        vector = rng.poisson(20.0, size=300).astype(float)
        target = 42
        estimates = [
            CountSketch(300, 32, 1, seed=seed).fit(vector).query(target)
            for seed in range(400)
        ]
        assert np.mean(estimates) == pytest.approx(vector[target], abs=10.0)

    def test_theorem2_error_bound_on_nearly_sparse_vector(self, rng):
        n, k = 2_000, 10
        vector = rng.normal(0.0, 1.0, size=n)
        heavy = rng.choice(n, size=k, replace=False)
        vector[heavy] += 500.0
        sketch = CountSketch(n, width=8 * k, depth=9, seed=3).fit(vector)
        error = np.max(np.abs(sketch.recover() - vector))
        bound = err_pk(vector, k, 2) / np.sqrt(k)
        assert error <= 5.0 * bound

    def test_l2_bound_beats_l1_bound_on_flat_tails(self, rng):
        """On a flat tail Err_2^k/√k ≪ Err_1^k/k, and CS beats Count-Median."""
        n, k = 5_000, 5
        vector = rng.uniform(-1.0, 1.0, size=n)
        heavy = rng.choice(n, size=k, replace=False)
        vector[heavy] += 300.0
        cs = CountSketch(n, 8 * k, 9, seed=1).fit(vector)
        cm = CountMedian(n, 8 * k, 9, seed=1).fit(vector)
        cs_error = np.mean(np.abs(cs.recover() - vector))
        cm_error = np.mean(np.abs(cm.recover() - vector))
        assert cs_error < cm_error

    def test_handles_negative_coordinates(self, rng):
        vector = rng.normal(0.0, 3.0, size=400)
        sketch = CountSketch(400, 128, 7, seed=2).fit(vector)
        assert np.max(np.abs(sketch.recover() - vector)) < 20.0

    def test_bucket_sign_sums_match_column_sums(self):
        sketch = CountSketch(200, 32, 4, seed=6)
        psi = sketch.bucket_sign_sums()
        assert psi.shape == (4, 32)
        # per row, the sum of ψ equals the sum of all signs
        np.testing.assert_allclose(
            psi.sum(axis=1), sketch._table.sign_values.sum(axis=1)
        )
