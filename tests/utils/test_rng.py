"""Unit tests for seeded random-number management."""

import numpy as np
import pytest

from repro.utils.rng import as_rng, derive_seed, spawn_rngs


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_rng(123).integers(0, 1_000_000, size=5)
        b = as_rng(123).integers(0, 1_000_000, size=5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(1)
        assert as_rng(generator) is generator

    def test_rejects_bool_and_strings(self):
        with pytest.raises(TypeError):
            as_rng(True)
        with pytest.raises(TypeError):
            as_rng("seed")


class TestDeriveSeed:
    def test_deterministic_for_int_source(self):
        assert derive_seed(42, 7) == derive_seed(42, 7)

    def test_different_salts_differ(self):
        assert derive_seed(42, 1) != derive_seed(42, 2)

    def test_different_sources_differ(self):
        assert derive_seed(1, 3) != derive_seed(2, 3)

    def test_non_negative(self):
        for salt in range(20):
            assert derive_seed(99, salt) >= 0


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_children_are_independent_streams(self):
        children = spawn_rngs(7, 2)
        a = children[0].integers(0, 1_000_000, size=10)
        b = children[1].integers(0, 1_000_000, size=10)
        assert not np.array_equal(a, b)

    def test_reproducible_from_same_seed(self):
        first = spawn_rngs(5, 3)
        second = spawn_rngs(5, 3)
        for x, y in zip(first, second):
            np.testing.assert_array_equal(
                x.integers(0, 1000, size=5), y.integers(0, 1000, size=5)
            )

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
