"""Unit tests for the validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    ensure_1d_float_array,
    require_in_range,
    require_index,
    require_positive_int,
    require_probability,
)


class TestRequirePositiveInt:
    def test_accepts_plain_int(self):
        assert require_positive_int(5, "x") == 5

    def test_accepts_numpy_integer(self):
        assert require_positive_int(np.int64(7), "x") == 7

    def test_rejects_bool(self):
        with pytest.raises(TypeError, match="x must be an integer"):
            require_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            require_positive_int(3.0, "x")

    def test_rejects_below_minimum(self):
        with pytest.raises(ValueError, match="must be >= 1"):
            require_positive_int(0, "x")

    def test_custom_minimum(self):
        assert require_positive_int(0, "x", minimum=0) == 0
        with pytest.raises(ValueError):
            require_positive_int(1, "x", minimum=2)


class TestRequireProbability:
    def test_accepts_interior_value(self):
        assert require_probability(0.5, "p") == 0.5

    @pytest.mark.parametrize("value", [0.0, 1.0, -0.1, 1.5])
    def test_rejects_boundary_and_outside(self, value):
        with pytest.raises(ValueError):
            require_probability(value, "p")


class TestRequireInRange:
    def test_inclusive_bounds(self):
        assert require_in_range(1.0, "v", low=1.0, high=2.0) == 1.0
        assert require_in_range(2.0, "v", low=1.0, high=2.0) == 2.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            require_in_range(1.0, "v", low=1.0, inclusive=False)
        with pytest.raises(ValueError):
            require_in_range(2.0, "v", high=2.0, inclusive=False)

    def test_violations_name_the_argument(self):
        with pytest.raises(ValueError, match="myvalue"):
            require_in_range(5.0, "myvalue", high=1.0)


class TestRequireIndex:
    def test_valid_index(self):
        assert require_index(3, 10) == 3

    def test_rejects_negative(self):
        with pytest.raises(IndexError):
            require_index(-1, 10)

    def test_rejects_too_large(self):
        with pytest.raises(IndexError):
            require_index(10, 10)

    def test_rejects_non_integer(self):
        with pytest.raises(TypeError):
            require_index(1.5, 10)


class TestEnsure1dFloatArray:
    def test_copies_input(self):
        source = np.array([1.0, 2.0])
        result = ensure_1d_float_array(source)
        result[0] = 99.0
        assert source[0] == 1.0

    def test_converts_lists(self):
        result = ensure_1d_float_array([1, 2, 3])
        assert result.dtype == np.float64
        np.testing.assert_array_equal(result, [1.0, 2.0, 3.0])

    def test_rejects_scalar(self):
        with pytest.raises(ValueError, match="1-D"):
            ensure_1d_float_array(3.0)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="must be 1-D"):
            ensure_1d_float_array(np.zeros((2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            ensure_1d_float_array([])

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError, match="finite"):
            ensure_1d_float_array([1.0, np.nan])
        with pytest.raises(ValueError, match="finite"):
            ensure_1d_float_array([np.inf, 1.0])
