"""Unit tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    buffer = io.StringIO()
    exit_code = main(list(argv), out=buffer)
    return exit_code, buffer.getvalue()


class TestDatasetsCommand:
    def test_lists_all_datasets_with_bias_gain(self):
        code, output = run_cli("datasets", "--dimension", "2000",
                               "--head-size", "20")
        assert code == 0
        for name in ("gaussian", "wiki", "worldcup", "higgs", "meme"):
            assert name in output
        assert "bias gain" in output


class TestSketchCommand:
    def test_reports_accuracy_and_bias(self):
        code, output = run_cli(
            "sketch", "--dataset", "gaussian", "--dimension", "5000",
            "--width", "256", "--depth", "5", "--algorithm", "l2_sr",
        )
        assert code == 0
        assert "average error" in output
        assert "estimated bias" in output

    def test_list_algorithms(self):
        code, output = run_cli("sketch", "--list-algorithms")
        assert code == 0
        assert "l2_sr" in output
        assert "count_min_cu" in output

    def test_baseline_without_bias_estimate(self):
        code, output = run_cli(
            "sketch", "--dataset", "zipf", "--dimension", "2000",
            "--width", "128", "--depth", "4", "--algorithm", "count_min",
        )
        assert code == 0
        assert "estimated bias" not in output


class TestExperimentCommand:
    def test_list(self):
        code, output = run_cli("experiment", "--list")
        assert code == 0
        assert "fig1_b100" in output
        assert "Figure 9" in output

    def test_listing_is_default_without_a_name(self):
        code, output = run_cli("experiment")
        assert code == 0
        assert "fig2" in output

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_cli("experiment", "fig99")

    def test_batch_size_flag_is_parsed(self):
        from repro.cli import _build_parser

        args = _build_parser().parse_args(
            ["experiment", "fig6", "--batch-size", "4096"]
        )
        assert args.batch_size == 4096
        default = _build_parser().parse_args(["experiment", "fig6"])
        assert default.batch_size is None

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            main([])
