"""Unit tests for the command-line interface."""

import io

import numpy as np
import pytest

from repro.cli import main


def run_cli(*argv):
    buffer = io.StringIO()
    exit_code = main(list(argv), out=buffer)
    return exit_code, buffer.getvalue()


class TestVersionFlag:
    def test_version_prints_package_version_and_exits_zero(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        captured = capsys.readouterr()
        assert __version__ in captured.out
        assert "repro" in captured.out


class TestScientificNotationGeometry:
    """Geometry flags accept scientific notation (`--dimension 1e8`)."""

    def test_dimension_and_width_in_scientific_notation(self):
        code, output = run_cli(
            "sketch", "--dataset", "gaussian", "--dimension", "2e3",
            "--width", "1.28e2", "--depth", "4", "--algorithm", "count_min",
        )
        assert code == 0
        assert "n = 2000" in output

    def test_datasets_accepts_scientific_dimension(self):
        code, output = run_cli("datasets", "--dimension", "2e3",
                               "--head-size", "1e2")
        assert code == 0
        assert "dataset" in output

    def test_non_integral_value_is_one_line_error(self):
        code, output = run_cli(
            "sketch", "--dataset", "gaussian", "--dimension", "1.5e-3",
            "--width", "64", "--depth", "3",
        )
        assert code == 2
        assert output.startswith("error:")
        assert len(output.strip().splitlines()) == 1
        assert "whole number" in output

    def test_garbage_value_is_one_line_error(self):
        code, output = run_cli(
            "sketch", "--dataset", "gaussian", "--dimension", "huge",
            "--width", "64", "--depth", "3",
        )
        assert code == 2
        assert output.startswith("error:")
        assert len(output.strip().splitlines()) == 1
        assert "scientific notation" in output


class TestErrorPaths:
    """User errors exit non-zero with a one-line actionable message."""

    def assert_one_line_error(self, code, output, *needles):
        assert code == 2
        assert output.startswith("error:")
        assert len(output.strip().splitlines()) == 1
        assert "Traceback" not in output
        for needle in needles:
            assert needle in output

    def test_unknown_sketch_name(self):
        code, output = run_cli(
            "sketch", "--dataset", "gaussian", "--dimension", "1000",
            "--width", "64", "--depth", "3", "--algorithm", "no_such_sketch",
        )
        self.assert_one_line_error(code, output, "no_such_sketch", "available")

    def test_invalid_width(self):
        code, output = run_cli(
            "sketch", "--dataset", "gaussian", "--dimension", "1000",
            "--width", "-64", "--depth", "3",
        )
        self.assert_one_line_error(code, output, "width", "positive")

    def test_invalid_depth(self):
        code, output = run_cli(
            "sketch", "--dataset", "gaussian", "--dimension", "1000",
            "--width", "64", "--depth", "0",
        )
        self.assert_one_line_error(code, output, "depth", "positive")

    def test_missing_dataset(self):
        code, output = run_cli(
            "sketch", "--dataset", "no_such_dataset", "--dimension", "1000",
            "--width", "64", "--depth", "3",
        )
        self.assert_one_line_error(code, output, "no_such_dataset", "available")

    def test_missing_dataset_on_save(self, tmp_path):
        code, output = run_cli(
            "save", "--dataset", "no_such_dataset", "--output",
            str(tmp_path / "x.sketch"),
        )
        self.assert_one_line_error(code, output, "no_such_dataset", "available")

    def test_load_missing_file(self, tmp_path):
        code, output = run_cli("load", str(tmp_path / "missing.sketch"))
        self.assert_one_line_error(code, output, "missing.sketch")

    def test_load_corrupt_payload(self, tmp_path):
        path = tmp_path / "corrupt.sketch"
        path.write_bytes(b"this is not a sketch payload")
        code, output = run_cli("load", str(path))
        self.assert_one_line_error(code, output)


class TestDatasetsCommand:
    def test_lists_all_datasets_with_bias_gain(self):
        code, output = run_cli("datasets", "--dimension", "2000",
                               "--head-size", "20")
        assert code == 0
        for name in ("gaussian", "wiki", "worldcup", "higgs", "meme"):
            assert name in output
        assert "bias gain" in output


class TestSketchCommand:
    def test_reports_accuracy_and_bias(self):
        code, output = run_cli(
            "sketch", "--dataset", "gaussian", "--dimension", "5000",
            "--width", "256", "--depth", "5", "--algorithm", "l2_sr",
        )
        assert code == 0
        assert "average error" in output
        assert "estimated bias" in output

    def test_list_algorithms(self):
        code, output = run_cli("sketch", "--list-algorithms")
        assert code == 0
        assert "l2_sr" in output
        assert "count_min_cu" in output

    def test_baseline_without_bias_estimate(self):
        code, output = run_cli(
            "sketch", "--dataset", "zipf", "--dimension", "2000",
            "--width", "128", "--depth", "4", "--algorithm", "count_min",
        )
        assert code == 0
        assert "estimated bias" not in output

    def test_sharded_ingestion_flag(self):
        code, output = run_cli(
            "sketch", "--dataset", "gaussian", "--dimension", "2000",
            "--width", "128", "--depth", "4", "--algorithm", "count_sketch",
            "--shards", "3",
        )
        assert code == 0
        assert "sharded (3 shards)" in output
        assert "average error" in output

    def test_sharding_a_non_linear_sketch_fails(self):
        code, output = run_cli(
            "sketch", "--dataset", "gaussian", "--dimension", "2000",
            "--width", "128", "--depth", "4", "--algorithm", "count_min_cu",
            "--shards", "2",
        )
        assert code == 2
        assert "not a linear sketch" in output


class TestSaveLoadCommands:
    def _save(self, tmp_path, algorithm="l2_sr", extra=()):
        path = tmp_path / "state.sketch"
        code, output = run_cli(
            "save", "--dataset", "gaussian", "--dimension", "2000",
            "--width", "128", "--depth", "4", "--seed", "3",
            "--algorithm", algorithm, "--output", str(path), *extra,
        )
        return code, output, path

    def test_save_writes_a_wire_payload(self, tmp_path):
        code, output, path = self._save(tmp_path)
        assert code == 0
        assert "saved" in output
        data = path.read_bytes()
        assert data[:4] == b"RPSK"
        assert f"{len(data)} bytes" in output

    def test_load_reports_and_queries_the_saved_sketch(self, tmp_path):
        code, _, path = self._save(tmp_path)
        assert code == 0
        code, output = run_cli("load", str(path), "--query", "0", "7")
        assert code == 0
        assert "kind             : l2_sr" in output
        assert "state_version 1" in output
        assert "query x[0]" in output
        assert "query x[7]" in output

    def test_save_load_round_trip_matches_in_process_sketch(self, tmp_path):
        from repro import serialization
        from repro.core import L2BiasAwareSketch
        from repro.data import load_dataset

        code, _, path = self._save(tmp_path)
        assert code == 0
        restored = serialization.sketch_from_bytes(path.read_bytes())
        dataset = load_dataset("gaussian", seed=3, dimension=2000)
        direct = L2BiasAwareSketch(2000, 128, 4, seed=3).fit(dataset.vector)
        np.testing.assert_array_equal(restored.recover(), direct.recover())

    def test_save_with_shards(self, tmp_path):
        code, output, path = self._save(
            tmp_path, algorithm="count_sketch", extra=("--shards", "2")
        )
        assert code == 0
        assert path.exists()


class TestWindowFlags:
    """``--window``/``--pane`` happy paths and exit-2 error paths."""

    BASE = ("sketch", "--dataset", "gaussian", "--dimension", "2000",
            "--width", "128", "--depth", "5", "--algorithm", "count_sketch")

    def assert_one_line_error(self, code, output, *needles):
        assert code == 2
        assert output.startswith("error:")
        assert len(output.strip().splitlines()) == 1
        assert "Traceback" not in output
        for needle in needles:
            assert needle in output

    def test_sliding_window_reports_fill_and_in_window_errors(self):
        code, output = run_cli(*self.BASE, "--window", "sliding:4",
                               "--pane", "300")
        assert code == 0
        assert "window           : sliding (4 pane(s) x 300 updates)" in output
        assert "updates in window" in output
        assert "window avg error" in output

    def test_tumbling_window_happy_path(self):
        code, output = run_cli(*self.BASE, "--window", "tumbling",
                               "--pane", "500")
        assert code == 0
        assert "tumbling" in output

    def test_decay_window_reports_no_error_metrics(self):
        code, output = run_cli(*self.BASE, "--window", "decay:0.9",
                               "--pane", "500")
        assert code == 0
        assert "decay" in output
        assert "n/a for decay windows" in output

    def test_pane_accepts_scientific_notation(self):
        code, output = run_cli(*self.BASE, "--window", "sliding:4",
                               "--pane", "3e2")
        assert code == 0
        assert "x 300 updates" in output

    def test_windowed_save_load_round_trip(self, tmp_path):
        path = tmp_path / "windowed.sketch"
        code, output = run_cli(
            "save", "--dataset", "gaussian", "--dimension", "2000",
            "--width", "128", "--depth", "5", "--algorithm", "count_sketch",
            "--window", "sliding:4", "--pane", "300", "--output", str(path),
        )
        assert code == 0
        assert path.exists()
        code, output = run_cli("load", str(path), "--query", "0", "1")
        assert code == 0
        assert "windowed count_sketch" in output
        assert "sliding (4 pane(s) x 300 updates)" in output
        assert "query x[0]" in output

    def test_window_without_pane(self):
        code, output = run_cli(*self.BASE, "--window", "sliding:4")
        self.assert_one_line_error(code, output, "--window requires --pane")

    def test_pane_without_window(self):
        code, output = run_cli(*self.BASE, "--pane", "300")
        self.assert_one_line_error(code, output, "--pane requires --window")

    def test_sliding_without_pane_count(self):
        code, output = run_cli(*self.BASE, "--window", "sliding",
                               "--pane", "300")
        self.assert_one_line_error(code, output, "pane count", "sliding:16")

    def test_unknown_window_mode(self):
        code, output = run_cli(*self.BASE, "--window", "hopping:4",
                               "--pane", "300")
        self.assert_one_line_error(code, output, "hopping", "tumbling")

    def test_tumbling_rejects_an_argument(self):
        code, output = run_cli(*self.BASE, "--window", "tumbling:4",
                               "--pane", "300")
        self.assert_one_line_error(code, output, "no argument")

    def test_decay_without_factor(self):
        code, output = run_cli(*self.BASE, "--window", "decay",
                               "--pane", "300")
        self.assert_one_line_error(code, output, "factor")

    def test_decay_factor_out_of_range(self):
        code, output = run_cli(*self.BASE, "--window", "decay:1.5",
                               "--pane", "300")
        self.assert_one_line_error(code, output, "(0, 1)", "1.5")

    def test_decay_factor_garbage(self):
        code, output = run_cli(*self.BASE, "--window", "decay:hot",
                               "--pane", "300")
        self.assert_one_line_error(code, output, "hot")

    def test_non_positive_pane_size(self):
        code, output = run_cli(*self.BASE, "--window", "sliding:4",
                               "--pane", "0")
        self.assert_one_line_error(code, output, "pane_size")

    def test_garbage_pane_size(self):
        code, output = run_cli(*self.BASE, "--window", "sliding:4",
                               "--pane", "huge")
        self.assert_one_line_error(code, output, "pane", "scientific notation")

    def test_non_positive_pane_count(self):
        code, output = run_cli(*self.BASE, "--window", "sliding:0",
                               "--pane", "300")
        self.assert_one_line_error(code, output, "panes")

    def test_non_linear_sketch_cannot_be_windowed(self):
        code, output = run_cli(
            "sketch", "--dataset", "gaussian", "--dimension", "2000",
            "--width", "128", "--depth", "5", "--algorithm", "count_min_cu",
            "--window", "sliding:4", "--pane", "300",
        )
        self.assert_one_line_error(code, output, "count_min_cu",
                                   "pane-merge algebra")


class TestExperimentCommand:
    def test_list(self):
        code, output = run_cli("experiment", "--list")
        assert code == 0
        assert "fig1_b100" in output
        assert "Figure 9" in output

    def test_listing_is_default_without_a_name(self):
        code, output = run_cli("experiment")
        assert code == 0
        assert "fig2" in output

    def test_unknown_experiment_exits_with_one_line_error(self):
        code, output = run_cli("experiment", "fig99")
        assert code == 2
        assert output.startswith("error:")
        assert "fig99" in output
        assert "available" in output
        assert "Traceback" not in output

    def test_batch_size_flag_is_parsed(self):
        from repro.cli import _build_parser

        args = _build_parser().parse_args(
            ["experiment", "fig6", "--batch-size", "4096"]
        )
        assert args.batch_size == 4096
        default = _build_parser().parse_args(["experiment", "fig6"])
        assert default.batch_size is None

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            main([])
