"""Unit tests for the command-line interface."""

import io

import numpy as np
import pytest

from repro.cli import main


def run_cli(*argv):
    buffer = io.StringIO()
    exit_code = main(list(argv), out=buffer)
    return exit_code, buffer.getvalue()


class TestVersionFlag:
    def test_version_prints_package_version_and_exits_zero(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        captured = capsys.readouterr()
        assert __version__ in captured.out
        assert "repro" in captured.out


class TestScientificNotationGeometry:
    """Geometry flags accept scientific notation (`--dimension 1e8`)."""

    def test_dimension_and_width_in_scientific_notation(self):
        code, output = run_cli(
            "sketch", "--dataset", "gaussian", "--dimension", "2e3",
            "--width", "1.28e2", "--depth", "4", "--algorithm", "count_min",
        )
        assert code == 0
        assert "n = 2000" in output

    def test_datasets_accepts_scientific_dimension(self):
        code, output = run_cli("datasets", "--dimension", "2e3",
                               "--head-size", "1e2")
        assert code == 0
        assert "dataset" in output

    def test_non_integral_value_is_one_line_error(self):
        code, output = run_cli(
            "sketch", "--dataset", "gaussian", "--dimension", "1.5e-3",
            "--width", "64", "--depth", "3",
        )
        assert code == 2
        assert output.startswith("error:")
        assert len(output.strip().splitlines()) == 1
        assert "whole number" in output

    def test_garbage_value_is_one_line_error(self):
        code, output = run_cli(
            "sketch", "--dataset", "gaussian", "--dimension", "huge",
            "--width", "64", "--depth", "3",
        )
        assert code == 2
        assert output.startswith("error:")
        assert len(output.strip().splitlines()) == 1
        assert "scientific notation" in output


class TestErrorPaths:
    """User errors exit non-zero with a one-line actionable message."""

    def assert_one_line_error(self, code, output, *needles):
        assert code == 2
        assert output.startswith("error:")
        assert len(output.strip().splitlines()) == 1
        assert "Traceback" not in output
        for needle in needles:
            assert needle in output

    def test_unknown_sketch_name(self):
        code, output = run_cli(
            "sketch", "--dataset", "gaussian", "--dimension", "1000",
            "--width", "64", "--depth", "3", "--algorithm", "no_such_sketch",
        )
        self.assert_one_line_error(code, output, "no_such_sketch", "available")

    def test_invalid_width(self):
        code, output = run_cli(
            "sketch", "--dataset", "gaussian", "--dimension", "1000",
            "--width", "-64", "--depth", "3",
        )
        self.assert_one_line_error(code, output, "width", "positive")

    def test_invalid_depth(self):
        code, output = run_cli(
            "sketch", "--dataset", "gaussian", "--dimension", "1000",
            "--width", "64", "--depth", "0",
        )
        self.assert_one_line_error(code, output, "depth", "positive")

    def test_missing_dataset(self):
        code, output = run_cli(
            "sketch", "--dataset", "no_such_dataset", "--dimension", "1000",
            "--width", "64", "--depth", "3",
        )
        self.assert_one_line_error(code, output, "no_such_dataset", "available")

    def test_missing_dataset_on_save(self, tmp_path):
        code, output = run_cli(
            "save", "--dataset", "no_such_dataset", "--output",
            str(tmp_path / "x.sketch"),
        )
        self.assert_one_line_error(code, output, "no_such_dataset", "available")

    def test_load_missing_file(self, tmp_path):
        code, output = run_cli("load", str(tmp_path / "missing.sketch"))
        self.assert_one_line_error(code, output, "missing.sketch")

    def test_load_corrupt_payload(self, tmp_path):
        path = tmp_path / "corrupt.sketch"
        path.write_bytes(b"this is not a sketch payload")
        code, output = run_cli("load", str(path))
        self.assert_one_line_error(code, output)


class TestDatasetsCommand:
    def test_lists_all_datasets_with_bias_gain(self):
        code, output = run_cli("datasets", "--dimension", "2000",
                               "--head-size", "20")
        assert code == 0
        for name in ("gaussian", "wiki", "worldcup", "higgs", "meme"):
            assert name in output
        assert "bias gain" in output


class TestSketchCommand:
    def test_reports_accuracy_and_bias(self):
        code, output = run_cli(
            "sketch", "--dataset", "gaussian", "--dimension", "5000",
            "--width", "256", "--depth", "5", "--algorithm", "l2_sr",
        )
        assert code == 0
        assert "average error" in output
        assert "estimated bias" in output

    def test_list_algorithms(self):
        code, output = run_cli("sketch", "--list-algorithms")
        assert code == 0
        assert "l2_sr" in output
        assert "count_min_cu" in output

    def test_baseline_without_bias_estimate(self):
        code, output = run_cli(
            "sketch", "--dataset", "zipf", "--dimension", "2000",
            "--width", "128", "--depth", "4", "--algorithm", "count_min",
        )
        assert code == 0
        assert "estimated bias" not in output

    def test_sharded_ingestion_flag(self):
        code, output = run_cli(
            "sketch", "--dataset", "gaussian", "--dimension", "2000",
            "--width", "128", "--depth", "4", "--algorithm", "count_sketch",
            "--shards", "3",
        )
        assert code == 0
        assert "sharded (3 shards)" in output
        assert "average error" in output

    def test_sharding_a_non_linear_sketch_fails(self):
        code, output = run_cli(
            "sketch", "--dataset", "gaussian", "--dimension", "2000",
            "--width", "128", "--depth", "4", "--algorithm", "count_min_cu",
            "--shards", "2",
        )
        assert code == 2
        assert "not a linear sketch" in output


class TestSaveLoadCommands:
    def _save(self, tmp_path, algorithm="l2_sr", extra=()):
        path = tmp_path / "state.sketch"
        code, output = run_cli(
            "save", "--dataset", "gaussian", "--dimension", "2000",
            "--width", "128", "--depth", "4", "--seed", "3",
            "--algorithm", algorithm, "--output", str(path), *extra,
        )
        return code, output, path

    def test_save_writes_a_wire_payload(self, tmp_path):
        code, output, path = self._save(tmp_path)
        assert code == 0
        assert "saved" in output
        data = path.read_bytes()
        assert data[:4] == b"RPSK"
        assert f"{len(data)} bytes" in output

    def test_load_reports_and_queries_the_saved_sketch(self, tmp_path):
        code, _, path = self._save(tmp_path)
        assert code == 0
        code, output = run_cli("load", str(path), "--query", "0", "7")
        assert code == 0
        assert "kind             : l2_sr" in output
        assert "state_version 1" in output
        assert "query x[0]" in output
        assert "query x[7]" in output

    def test_save_load_round_trip_matches_in_process_sketch(self, tmp_path):
        from repro import serialization
        from repro.core import L2BiasAwareSketch
        from repro.data import load_dataset

        code, _, path = self._save(tmp_path)
        assert code == 0
        restored = serialization.sketch_from_bytes(path.read_bytes())
        dataset = load_dataset("gaussian", seed=3, dimension=2000)
        direct = L2BiasAwareSketch(2000, 128, 4, seed=3).fit(dataset.vector)
        np.testing.assert_array_equal(restored.recover(), direct.recover())

    def test_save_with_shards(self, tmp_path):
        code, output, path = self._save(
            tmp_path, algorithm="count_sketch", extra=("--shards", "2")
        )
        assert code == 0
        assert path.exists()


class TestWindowFlags:
    """``--window``/``--pane`` happy paths and exit-2 error paths."""

    BASE = ("sketch", "--dataset", "gaussian", "--dimension", "2000",
            "--width", "128", "--depth", "5", "--algorithm", "count_sketch")

    def assert_one_line_error(self, code, output, *needles):
        assert code == 2
        assert output.startswith("error:")
        assert len(output.strip().splitlines()) == 1
        assert "Traceback" not in output
        for needle in needles:
            assert needle in output

    def test_sliding_window_reports_fill_and_in_window_errors(self):
        code, output = run_cli(*self.BASE, "--window", "sliding:4",
                               "--pane", "300")
        assert code == 0
        assert "window           : sliding (4 pane(s) x 300 updates)" in output
        assert "updates in window" in output
        assert "window avg error" in output

    def test_tumbling_window_happy_path(self):
        code, output = run_cli(*self.BASE, "--window", "tumbling",
                               "--pane", "500")
        assert code == 0
        assert "tumbling" in output

    def test_decay_window_reports_no_error_metrics(self):
        code, output = run_cli(*self.BASE, "--window", "decay:0.9",
                               "--pane", "500")
        assert code == 0
        assert "decay" in output
        assert "n/a for decay windows" in output

    def test_pane_accepts_scientific_notation(self):
        code, output = run_cli(*self.BASE, "--window", "sliding:4",
                               "--pane", "3e2")
        assert code == 0
        assert "x 300 updates" in output

    def test_windowed_save_load_round_trip(self, tmp_path):
        path = tmp_path / "windowed.sketch"
        code, output = run_cli(
            "save", "--dataset", "gaussian", "--dimension", "2000",
            "--width", "128", "--depth", "5", "--algorithm", "count_sketch",
            "--window", "sliding:4", "--pane", "300", "--output", str(path),
        )
        assert code == 0
        assert path.exists()
        code, output = run_cli("load", str(path), "--query", "0", "1")
        assert code == 0
        assert "windowed count_sketch" in output
        assert "sliding (4 pane(s) x 300 updates)" in output
        assert "query x[0]" in output

    def test_window_without_pane(self):
        code, output = run_cli(*self.BASE, "--window", "sliding:4")
        self.assert_one_line_error(code, output, "--window requires --pane")

    def test_pane_without_window(self):
        code, output = run_cli(*self.BASE, "--pane", "300")
        self.assert_one_line_error(code, output, "--pane requires --window")

    def test_sliding_without_pane_count(self):
        code, output = run_cli(*self.BASE, "--window", "sliding",
                               "--pane", "300")
        self.assert_one_line_error(code, output, "pane count", "sliding:16")

    def test_unknown_window_mode(self):
        code, output = run_cli(*self.BASE, "--window", "hopping:4",
                               "--pane", "300")
        self.assert_one_line_error(code, output, "hopping", "tumbling")

    def test_tumbling_rejects_an_argument(self):
        code, output = run_cli(*self.BASE, "--window", "tumbling:4",
                               "--pane", "300")
        self.assert_one_line_error(code, output, "no argument")

    def test_decay_without_factor(self):
        code, output = run_cli(*self.BASE, "--window", "decay",
                               "--pane", "300")
        self.assert_one_line_error(code, output, "factor")

    def test_decay_factor_out_of_range(self):
        code, output = run_cli(*self.BASE, "--window", "decay:1.5",
                               "--pane", "300")
        self.assert_one_line_error(code, output, "(0, 1)", "1.5")

    def test_decay_factor_garbage(self):
        code, output = run_cli(*self.BASE, "--window", "decay:hot",
                               "--pane", "300")
        self.assert_one_line_error(code, output, "hot")

    def test_non_positive_pane_size(self):
        code, output = run_cli(*self.BASE, "--window", "sliding:4",
                               "--pane", "0")
        self.assert_one_line_error(code, output, "pane_size")

    def test_garbage_pane_size(self):
        code, output = run_cli(*self.BASE, "--window", "sliding:4",
                               "--pane", "huge")
        self.assert_one_line_error(code, output, "pane", "scientific notation")

    def test_non_positive_pane_count(self):
        code, output = run_cli(*self.BASE, "--window", "sliding:0",
                               "--pane", "300")
        self.assert_one_line_error(code, output, "panes")

    def test_non_linear_sketch_cannot_be_windowed(self):
        code, output = run_cli(
            "sketch", "--dataset", "gaussian", "--dimension", "2000",
            "--width", "128", "--depth", "5", "--algorithm", "count_min_cu",
            "--window", "sliding:4", "--pane", "300",
        )
        self.assert_one_line_error(code, output, "count_min_cu",
                                   "pane-merge algebra")


class TestExperimentCommand:
    def test_list(self):
        code, output = run_cli("experiment", "--list")
        assert code == 0
        assert "fig1_b100" in output
        assert "Figure 9" in output

    def test_listing_is_default_without_a_name(self):
        code, output = run_cli("experiment")
        assert code == 0
        assert "fig2" in output

    def test_unknown_experiment_exits_with_one_line_error(self):
        code, output = run_cli("experiment", "fig99")
        assert code == 2
        assert output.startswith("error:")
        assert "fig99" in output
        assert "available" in output
        assert "Traceback" not in output

    def test_batch_size_flag_is_parsed(self):
        from repro.cli import _build_parser

        args = _build_parser().parse_args(
            ["experiment", "fig6", "--batch-size", "4096"]
        )
        assert args.batch_size == 4096
        default = _build_parser().parse_args(["experiment", "fig6"])
        assert default.batch_size is None

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestNounVerbGrammar:
    """The noun-verb grammar and the legacy-invocation rewriter."""

    def test_new_forms_emit_no_deprecation_warning(self):
        import warnings

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            code, output = run_cli("sketch", "list")
            assert code == 0 and "l2_sr" in output
            code, output = run_cli("experiment", "list")
            assert code == 0 and "fig2" in output
            code, output = run_cli("dataset", "list", "--dimension", "2000")
            assert code == 0 and "bias gain" in output
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert deprecations == []

    @pytest.mark.parametrize("legacy, replacement", [
        (("datasets", "--dimension", "2000"), "repro dataset list"),
        (("sketch", "--list-algorithms"), "repro sketch fit"),
        (("experiment", "--list"), "repro experiment list"),
        (("experiment",), "repro experiment list"),
    ])
    def test_legacy_forms_warn_once_and_keep_working(self, legacy, replacement):
        with pytest.warns(DeprecationWarning, match=replacement) as record:
            code, output = run_cli(*legacy)
        assert code == 0
        warnings_seen = [w for w in record
                         if w.category is DeprecationWarning]
        assert len(warnings_seen) == 1
        assert "deprecated" in str(warnings_seen[0].message)

    def test_legacy_save_and_load_are_rewritten(self, tmp_path):
        path = tmp_path / "x.sketch"
        with pytest.warns(DeprecationWarning, match="repro sketch save"):
            code, _ = run_cli("save", "--dimension", "1000", "--width", "64",
                              "--depth", "4", "--output", str(path))
        assert code == 0
        with pytest.warns(DeprecationWarning, match="repro sketch load"):
            code, output = run_cli("load", str(path))
        assert code == 0
        assert "items processed" in output

    def test_legacy_experiment_name_maps_to_run(self):
        # fig99 is unknown: the rewrite must land in `experiment run`, whose
        # registry lookup produces the one-line error naming the candidates
        with pytest.warns(DeprecationWarning, match="repro experiment run"):
            code, output = run_cli("experiment", "fig99")
        assert code == 2
        assert output.startswith("error:") and "available" in output

    def test_new_style_sketch_fit_equals_legacy_sketch(self):
        args = ("--dataset", "gaussian", "--dimension", "2000",
                "--width", "128", "--depth", "4")
        code_new, out_new = run_cli("sketch", "fit", *args)
        with pytest.warns(DeprecationWarning):
            code_old, out_old = run_cli("sketch", *args)
        assert code_new == code_old == 0
        assert out_new == out_old


class TestStoreCommands:
    """The ``repro store`` noun: put/get/list/history/compact/delete."""

    FIT = ("--dataset", "gaussian", "--dimension", "1000",
           "--width", "64", "--depth", "4", "--seed", "3")
    WINDOWED = FIT + ("--algorithm", "count_sketch",
                      "--window", "sliding:4", "--pane", "150")

    def assert_one_line_error(self, code, output, *needles):
        assert code == 2
        assert output.startswith("error:")
        assert len(output.strip().splitlines()) == 1
        assert "Traceback" not in output
        for needle in needles:
            assert needle in output

    def test_put_prints_the_versioned_uri(self, tmp_path):
        db = tmp_path / "cat.db"
        code, output = run_cli("store", "put", str(db), "traffic", *self.FIT)
        assert code == 0
        assert f"store://{db}#traffic@1" in output
        code, output = run_cli("store", "put", str(db), "traffic", *self.FIT)
        assert code == 0
        assert f"store://{db}#traffic@2" in output

    def test_get_restores_across_processes_worth_of_state(self, tmp_path):
        db = tmp_path / "cat.db"
        run_cli("store", "put", str(db), "traffic", *self.FIT)
        code, output = run_cli("store", "get", str(db), "traffic",
                               "--query", "0", "7")
        assert code == 0
        assert f"store://{db}#traffic@1" in output
        assert "config           : l2_sr" in output
        assert "query x[0]" in output and "query x[7]" in output

    def test_get_output_flag_writes_the_exact_payload(self, tmp_path):
        db, out_path = tmp_path / "cat.db", tmp_path / "copy.sketch"
        run_cli("store", "put", str(db), "traffic", *self.FIT)
        code, output = run_cli("store", "get", str(db), "traffic",
                               "--output", str(out_path))
        assert code == 0
        from repro.store import SketchStore

        with SketchStore(db) as store:
            assert out_path.read_bytes() == store.get_payload("traffic")

    def test_put_input_flag_stores_an_existing_payload(self, tmp_path):
        db, path = tmp_path / "cat.db", tmp_path / "x.sketch"
        run_cli("sketch", "save", *self.FIT, "--output", str(path))
        code, output = run_cli("store", "put", str(db), "copied",
                               "--input", str(path))
        assert code == 0
        from repro.store import SketchStore

        with SketchStore(db) as store:
            assert store.get_payload("copied") == path.read_bytes()

    def test_sketch_save_and_load_accept_store_uris(self, tmp_path):
        db = tmp_path / "cat.db"
        uri = f"store://{db}#traffic"
        code, output = run_cli("sketch", "save", *self.FIT,
                               "--output", uri)
        assert code == 0
        assert f"{uri}@1" in output
        code, output = run_cli("sketch", "load", f"{uri}@1", "--query", "0")
        assert code == 0
        assert "query x[0]" in output

    def test_list_and_history_render_the_catalog(self, tmp_path):
        db = tmp_path / "cat.db"
        run_cli("store", "put", str(db), "traffic", *self.FIT)
        run_cli("store", "put", str(db), "win", *self.WINDOWED)
        run_cli("store", "put", str(db), "win", *self.WINDOWED)
        code, output = run_cli("store", "list", str(db))
        assert code == 0
        lines = output.strip().splitlines()
        assert lines[0].startswith("name")
        assert any(line.startswith("traffic") and " l2_sr " in line
                   for line in lines)
        assert any(line.startswith("win") and "count_sketch+w" in line
                   for line in lines)
        code, output = run_cli("store", "history", str(db), "win")
        assert code == 0
        rows = output.strip().splitlines()[1:]
        assert len(rows) == 2
        assert rows[0].lstrip().startswith("1")
        assert rows[1].lstrip().startswith("2")

    def test_compact_reports_and_preserves_restores(self, tmp_path):
        db = tmp_path / "cat.db"
        for _ in range(3):
            run_cli("store", "put", str(db), "win", *self.WINDOWED)
        from repro.store import SketchStore

        with SketchStore(db) as store:
            payloads = {version: store.get("win", version).recover()
                        for version in (1, 2, 3)}
        code, output = run_cli("store", "compact", str(db), "win",
                               "--include-latest")
        assert code == 0
        assert "compacted        : 3 of 3" in output
        assert "saved" in output
        with SketchStore(db) as store:
            for version, recovered in payloads.items():
                np.testing.assert_array_equal(
                    store.get("win", version).recover(), recovered
                )

    def test_delete_removes_a_version_then_the_name(self, tmp_path):
        db = tmp_path / "cat.db"
        run_cli("store", "put", str(db), "traffic", *self.FIT)
        run_cli("store", "put", str(db), "traffic", *self.FIT)
        code, output = run_cli("store", "delete", str(db), "traffic",
                               "--version", "1")
        assert code == 0
        assert "traffic@1" in output
        code, output = run_cli("store", "delete", str(db), "traffic")
        assert code == 0
        code, output = run_cli("store", "list", str(db))
        assert "(empty store)" in output

    def test_get_unknown_name_is_a_one_line_error(self, tmp_path):
        db = tmp_path / "cat.db"
        run_cli("store", "put", str(db), "traffic", *self.FIT)
        code, output = run_cli("store", "get", str(db), "ghost")
        self.assert_one_line_error(code, output, "ghost")

    def test_bad_name_is_a_one_line_error(self, tmp_path):
        db = tmp_path / "cat.db"
        code, output = run_cli("store", "put", str(db), "bad#name", *self.FIT)
        self.assert_one_line_error(code, output, "bad#name")

    def test_malformed_uri_is_a_one_line_error(self, tmp_path):
        code, output = run_cli("sketch", "load",
                               f"store://{tmp_path / 'cat.db'}")
        self.assert_one_line_error(code, output, "store://")


class TestLoadReportsEmbeddedWireVersion:
    """A stale-build payload names the version it was written as (exit 2)."""

    def _window_payload(self, tmp_path):
        path = tmp_path / "state.window"
        code, _ = run_cli(
            "sketch", "save", "--dataset", "gaussian", "--dimension", "2000",
            "--width", "128", "--depth", "4", "--seed", "3",
            "--algorithm", "count_sketch", "--window", "sliding:4",
            "--pane", "300", "--output", str(path),
        )
        assert code == 0
        return path

    def assert_one_line_error(self, code, output, *needles):
        assert code == 2
        assert output.startswith("error:")
        assert len(output.strip().splitlines()) == 1
        assert "Traceback" not in output
        for needle in needles:
            assert needle in output

    def test_older_window_wire_version_is_reported(self, tmp_path):
        from repro.streaming.windows import _WINDOW_PREAMBLE

        path = self._window_payload(tmp_path)
        payload = path.read_bytes()
        magic, _, header_len = _WINDOW_PREAMBLE.unpack_from(payload, 0)
        path.write_bytes(_WINDOW_PREAMBLE.pack(magic, 0, header_len)
                         + payload[_WINDOW_PREAMBLE.size:])
        code, output = run_cli("sketch", "load", str(path))
        self.assert_one_line_error(code, output, "version 0",
                                   "reads version 1")

    def test_corrupt_window_header_names_the_embedded_version(self, tmp_path):
        path = self._window_payload(tmp_path)
        payload = bytearray(path.read_bytes())
        from repro.streaming.windows import _WINDOW_PREAMBLE

        payload[_WINDOW_PREAMBLE.size] = ord("!")  # break the JSON header
        path.write_bytes(bytes(payload))
        code, output = run_cli("sketch", "load", str(path))
        self.assert_one_line_error(code, output, "wire version 1",
                                   "corrupt window header")

    def test_truncated_window_payload_names_the_embedded_version(
        self, tmp_path
    ):
        path = self._window_payload(tmp_path)
        payload = path.read_bytes()
        from repro.streaming.windows import _WINDOW_PREAMBLE

        path.write_bytes(payload[:_WINDOW_PREAMBLE.size + 4])
        code, output = run_cli("sketch", "load", str(path))
        self.assert_one_line_error(code, output, "truncated window payload",
                                   "wire version 1")

    def test_truncated_sketch_payload_names_the_embedded_version(
        self, tmp_path
    ):
        path = tmp_path / "state.sketch"
        code, _ = run_cli("sketch", "save", "--dimension", "1000",
                          "--width", "64", "--depth", "4",
                          "--output", str(path))
        assert code == 0
        from repro.serialization import _PREAMBLE

        path.write_bytes(path.read_bytes()[:_PREAMBLE.size + 4])
        code, output = run_cli("sketch", "load", str(path))
        self.assert_one_line_error(code, output, "truncated payload",
                                   "wire version 1")
