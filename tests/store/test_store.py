"""Unit tests for the persistent sketch catalog (:mod:`repro.store`).

The store's contract is bit-exactness over SQLite: ``get`` returns the very
bytes ``put`` staged (so restores are bit-identical in any process), the
listing table is a materialized view the write path keeps consistent, and
``commit`` is atomic — either every staged snapshot lands or none do.
"""

import sqlite3

import numpy as np
import pytest

from repro.api import SketchConfig, SketchSession
from repro.store import (
    SCHEMA_VERSION,
    SketchStore,
    StoreError,
    StoreURI,
    format_store_uri,
    is_store_uri,
    parse_store_uri,
    schema_dump,
)
from repro.streaming.windows import WindowSpec

DIMENSION = 512


def make_session(seed=7, scale=1.0):
    config = SketchConfig("l2_sr", dimension=DIMENSION, width=64, depth=5,
                          seed=seed)
    session = SketchSession.from_config(config)
    vector = np.random.default_rng(seed).normal(100.0, 15.0, DIMENSION) * scale
    session.ingest(vector)
    return session


def make_windowed_session(seed=7, panes=4, pane_size=100):
    spec = WindowSpec(mode="sliding", panes=panes, pane_size=pane_size,
                      by="count")
    config = SketchConfig("count_min", dimension=DIMENSION, width=32, depth=4,
                          seed=seed, window=spec)
    session = SketchSession.from_config(config)
    vector = np.random.default_rng(seed).poisson(30.0, DIMENSION).astype(float)
    session.ingest(vector)
    return session


@pytest.fixture
def store(tmp_path):
    with SketchStore(tmp_path / "catalog.db") as opened:
        yield opened


class TestPutGet:
    def test_put_assigns_monotonic_versions(self, store):
        session = make_session()
        assert store.put("traffic", session) == 1
        assert store.put("traffic", session) == 2
        assert store.put("other", session) == 1
        assert store.put("traffic", session) == 3

    def test_get_latest_is_bit_identical(self, store):
        first, second = make_session(seed=1), make_session(seed=2)
        store.put("traffic", first)
        store.put("traffic", second)
        restored = store.get("traffic")
        assert restored.to_bytes() == second.to_bytes()

    def test_get_by_version_is_bit_identical(self, store):
        sessions = [make_session(seed=seed) for seed in (1, 2, 3)]
        for session in sessions:
            store.put("traffic", session)
        for version, session in enumerate(sessions, start=1):
            assert (store.get("traffic", version).to_bytes()
                    == session.to_bytes())

    def test_put_accepts_raw_payload_bytes(self, store):
        payload = make_session().to_bytes()
        store.put("raw", payload)
        assert store.get_payload("raw") == payload

    def test_windowed_session_roundtrips(self, store):
        session = make_windowed_session()
        store.put("win", session)
        restored = store.get("win")
        assert restored.to_bytes() == session.to_bytes()
        assert np.array_equal(restored.recover(), session.recover())

    def test_get_unknown_name_raises_store_error(self, store):
        with pytest.raises(StoreError, match="no sketch named 'ghost'"):
            store.get("ghost")

    def test_get_unknown_version_raises_store_error(self, store):
        store.put("traffic", make_session())
        with pytest.raises(StoreError, match="version"):
            store.get("traffic", 9)

    def test_invalid_names_are_rejected(self, store):
        session = make_session()
        for name in ("", "a#b", "a@1"):
            with pytest.raises(StoreError):
                store.put(name, session)

    def test_restores_are_cross_instance(self, tmp_path):
        path = tmp_path / "catalog.db"
        session = make_session()
        with SketchStore(path) as writer:
            writer.put("traffic", session)
        with SketchStore(path) as reader:
            assert reader.get("traffic").to_bytes() == session.to_bytes()


class TestCommitAtomicity:
    def test_commit_returns_version_mapping(self, store):
        versions = store.commit({"a": make_session(seed=1),
                                 "b": make_session(seed=2)})
        assert versions == {"a": 1, "b": 1}
        assert store.commit({"a": make_session(seed=3)}) == {"a": 2}

    def test_commit_accepts_pairs(self, store):
        versions = store.commit([("a", make_session(seed=1)),
                                 ("b", make_session(seed=2))])
        assert versions == {"a": 1, "b": 1}

    def test_commit_rejects_duplicate_names(self, store):
        with pytest.raises(StoreError, match="per name per commit"):
            store.commit([("a", make_session(seed=1)),
                          ("a", make_session(seed=2))])

    def test_failed_commit_stages_nothing(self, store):
        store.put("a", make_session(seed=1))
        with pytest.raises(StoreError):
            store.commit([("a", make_session(seed=2)),
                          ("bad#name", make_session(seed=3))])
        # the valid half of the batch must not have landed
        assert [entry.name for entry in store.list()] == ["a"]
        assert len(store.history("a")) == 1

    def test_commit_rejects_non_payload_values(self, store):
        with pytest.raises(StoreError):
            store.commit({"a": 42})


class TestListingAndHistory:
    def test_list_is_sorted_and_materialized(self, store):
        store.put("beta", make_session(seed=1))
        store.put("alpha", make_windowed_session())
        store.put("beta", make_session(seed=2))
        entries = store.list()
        assert [entry.name for entry in entries] == ["alpha", "beta"]
        alpha, beta = entries
        assert alpha.kind == "count_min" and alpha.windowed
        assert beta.kind == "l2_sr" and not beta.windowed
        assert beta.latest_version == 2 and beta.snapshot_count == 2
        history = store.history("beta")
        assert beta.total_bytes == sum(s.payload_bytes for s in history)

    def test_history_is_oldest_first_with_metadata(self, store):
        store.put("win", make_windowed_session(panes=4, pane_size=100))
        store.put("win", make_windowed_session(panes=4, pane_size=100))
        history = store.history("win")
        assert [snapshot.version for snapshot in history] == [1, 2]
        for snapshot in history:
            assert snapshot.kind == "count_min"
            assert snapshot.windowed and snapshot.window_mode == "sliding"
            assert snapshot.pane_count >= 2
            assert snapshot.width == 32 and snapshot.depth == 4
            assert not snapshot.compacted

    def test_history_of_unknown_name_raises(self, store):
        with pytest.raises(StoreError, match="ghost"):
            store.history("ghost")

    def test_empty_store_lists_nothing(self, store):
        assert store.list() == []


class TestDelete:
    def test_delete_one_version(self, store):
        for seed in (1, 2, 3):
            store.put("traffic", make_session(seed=seed))
        assert store.delete("traffic", 2) == 1
        versions = [snapshot.version for snapshot in store.history("traffic")]
        assert versions == [1, 3]
        # listing reflects the deletion, and the latest version is untouched
        entry, = store.list()
        assert entry.snapshot_count == 2 and entry.latest_version == 3

    def test_delete_whole_name(self, store):
        store.put("traffic", make_session())
        store.put("traffic", make_session())
        assert store.delete("traffic") == 2
        assert store.list() == []
        with pytest.raises(StoreError):
            store.get("traffic")

    def test_delete_unknown_raises(self, store):
        with pytest.raises(StoreError):
            store.delete("ghost")


class TestDatabaseDiscipline:
    def test_wal_mode_and_busy_timeout(self, store):
        cursor = store._connection.cursor()
        assert cursor.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        assert cursor.execute("PRAGMA busy_timeout").fetchone()[0] == 30_000
        assert cursor.execute("PRAGMA foreign_keys").fetchone()[0] == 1

    def test_schema_version_pragma_is_stamped(self, store):
        cursor = store._connection.cursor()
        assert (cursor.execute("PRAGMA user_version").fetchone()[0]
                == SCHEMA_VERSION)

    def test_foreign_sqlite_file_is_rejected(self, tmp_path):
        path = tmp_path / "other.db"
        with sqlite3.connect(path) as connection:
            connection.execute("CREATE TABLE unrelated (x INTEGER)")
        with pytest.raises(StoreError, match="not a sketch store"):
            SketchStore(path)

    def test_directory_path_is_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            SketchStore(tmp_path)

    def test_missing_parent_directory_is_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            SketchStore(tmp_path / "no" / "such" / "dir" / "catalog.db")

    def test_schema_matches_golden_dump(self, store, request):
        golden = (request.config.rootpath / "tests" / "data" / "golden_store"
                  / "schema.sql")
        assert schema_dump(store._connection) == golden.read_text()


class TestStoreURI:
    def test_roundtrip(self):
        uri = format_store_uri("/data/cat.db", "traffic", 3)
        assert uri == "store:///data/cat.db#traffic@3"
        parsed = parse_store_uri(uri)
        assert parsed == StoreURI(path="/data/cat.db", name="traffic",
                                  version=3)
        assert str(parsed) == uri

    def test_version_is_optional(self):
        parsed = parse_store_uri("store://cat.db#traffic")
        assert parsed.version is None
        assert format_store_uri("cat.db", "traffic") == "store://cat.db#traffic"

    def test_is_store_uri(self):
        assert is_store_uri("store://cat.db#x")
        assert not is_store_uri("cat.db")
        assert not is_store_uri(b"store://cat.db#x")

    @pytest.mark.parametrize("uri", [
        "store://cat.db",            # no fragment
        "store://#name",             # empty path
        "store://cat.db#",           # empty name
        "store://cat.db#a#b",        # two fragments
        "store://cat.db#a@x",        # non-integer version
        "store://cat.db#a@0",        # versions start at 1
    ])
    def test_malformed_uris_raise(self, uri):
        with pytest.raises(StoreError):
            parse_store_uri(uri)


class TestCompaction:
    def test_compact_folds_closed_panes_and_preserves_answers(self, store):
        sessions = [make_windowed_session(seed=seed, panes=4, pane_size=100)
                    for seed in (1, 2, 3)]
        for session in sessions:
            store.put("win", session)
        before = {snapshot.version: snapshot
                  for snapshot in store.history("win")}
        report = store.compact("win", keep_latest=False)
        assert report.snapshots_compacted == 3
        assert report.panes_folded > 0
        assert report.bytes_after < report.bytes_before
        after = store.history("win")
        for snapshot in after:
            assert snapshot.compacted
            assert snapshot.pane_count <= 2
            assert snapshot.payload_bytes < before[snapshot.version].payload_bytes
        # every version still answers identically
        for version, session in enumerate(sessions, start=1):
            restored = store.get("win", version)
            assert np.array_equal(restored.recover(), session.recover())
            assert restored.items_processed == session.items_processed

    def test_keep_latest_leaves_newest_snapshot_untouched(self, store):
        store.put("win", make_windowed_session(seed=1))
        store.put("win", make_windowed_session(seed=2))
        report = store.compact("win")
        assert report.snapshots_compacted == 1
        first, second = store.history("win")
        assert first.compacted and not second.compacted

    def test_unwindowed_snapshots_are_not_candidates(self, store):
        store.put("plain", make_session())
        store.put("plain", make_session())
        report = store.compact("plain")
        assert report.snapshots_examined == 0
        assert report.snapshots_compacted == 0
        assert not any(snapshot.compacted
                       for snapshot in store.history("plain"))

    def test_compact_is_idempotent(self, store):
        store.put("win", make_windowed_session(seed=1))
        store.put("win", make_windowed_session(seed=2))
        store.compact("win", keep_latest=False)
        report = store.compact("win", keep_latest=False)
        assert report.snapshots_compacted == 0

    def test_whole_store_compaction_updates_listing_bytes(self, store):
        store.put("win", make_windowed_session(seed=1))
        store.put("win", make_windowed_session(seed=2))
        store.put("plain", make_session())
        before = {entry.name: entry.total_bytes for entry in store.list()}
        store.compact(keep_latest=False)
        after = {entry.name: entry.total_bytes for entry in store.list()}
        assert after["win"] < before["win"]
        assert after["plain"] == before["plain"]
