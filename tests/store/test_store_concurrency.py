"""Concurrent-access tests for the sketch store (WAL mode).

The store's concurrency promise: one writer appending snapshots while N
reader processes restore concurrently, with no ``database is locked``
errors escaping (WAL readers never block on the writer; writer-writer
contention waits out the busy timeout) and every restore bit-identical to
what the writer staged.

Payloads are deterministic functions of the snapshot version (fixed seed,
version-derived vector), so a reader can independently reconstruct the
exact bytes any version must hold.
"""

import multiprocessing
import sqlite3

import numpy as np
import pytest

from repro.api import SketchConfig, SketchSession
from repro.store import SketchStore

DIMENSION = 256
WRITER_SNAPSHOTS = 8
READERS = 3


def expected_payload(version: int) -> bytes:
    """The deterministic wire bytes of snapshot ``version`` of 'shared'."""
    config = SketchConfig("l2_sr", dimension=DIMENSION, width=32, depth=4,
                          seed=97)
    session = SketchSession.from_config(config)
    vector = np.random.default_rng(version).normal(100.0, 15.0, DIMENSION)
    session.ingest(vector)
    return session.to_bytes()


def writer_process(path, snapshots, errors):
    try:
        with SketchStore(path) as store:
            for version in range(1, snapshots + 1):
                store.put("shared", expected_payload(version))
    except Exception as exc:  # pragma: no cover - reported via the queue
        errors.put(f"writer: {type(exc).__name__}: {exc}")


def reader_process(path, stop_version, errors):
    """Restore the latest snapshot in a loop until the writer finishes.

    Every observed payload must be bit-identical to the deterministic
    payload of its version — a torn or stale-index read would not be.
    """
    try:
        seen = 0
        while seen < stop_version:
            with SketchStore(path) as store:
                try:
                    history = store.history("shared")
                except Exception:
                    continue  # the name does not exist yet
                if not history:
                    continue
                latest = history[-1].version
                payload = store.get_payload("shared", latest)
            if payload != expected_payload(latest):
                errors.put(f"reader: version {latest} not bit-identical")
                return
            seen = max(seen, latest)
    except Exception as exc:  # pragma: no cover - reported via the queue
        errors.put(f"reader: {type(exc).__name__}: {exc}")


def concurrent_writer(path, name, snapshots, errors):
    try:
        with SketchStore(path) as store:
            for version in range(1, snapshots + 1):
                store.put(name, expected_payload(version))
    except Exception as exc:  # pragma: no cover - reported via the queue
        errors.put(f"writer {name}: {type(exc).__name__}: {exc}")


def drain(queue) -> list:
    failures = []
    while not queue.empty():
        failures.append(queue.get())
    return failures


@pytest.fixture
def store_path(tmp_path):
    path = tmp_path / "catalog.db"
    # initialise the schema up front so readers never race a half-created file
    SketchStore(path).close()
    return str(path)


class TestWriterWithConcurrentReaders:
    def test_readers_restore_while_writer_ingests(self, store_path):
        context = multiprocessing.get_context("fork")
        errors = context.Queue()
        writer = context.Process(
            target=writer_process,
            args=(store_path, WRITER_SNAPSHOTS, errors),
        )
        readers = [
            context.Process(
                target=reader_process,
                args=(store_path, WRITER_SNAPSHOTS, errors),
            )
            for _ in range(READERS)
        ]
        for process in readers:
            process.start()
        writer.start()
        writer.join(timeout=60)
        for process in readers:
            process.join(timeout=60)
        assert not writer.is_alive()
        assert not any(process.is_alive() for process in readers)
        failures = drain(errors)
        assert failures == []
        assert not any("database is locked" in failure
                       for failure in failures)
        # after the dust settles, every version restores bit-identically
        with SketchStore(store_path) as store:
            history = store.history("shared")
            assert [snapshot.version for snapshot in history] == list(
                range(1, WRITER_SNAPSHOTS + 1)
            )
            for version in range(1, WRITER_SNAPSHOTS + 1):
                assert (store.get_payload("shared", version)
                        == expected_payload(version))


class TestConcurrentWriters:
    def test_two_writers_wait_out_the_lock(self, store_path):
        context = multiprocessing.get_context("fork")
        errors = context.Queue()
        writers = [
            context.Process(
                target=concurrent_writer,
                args=(store_path, name, 4, errors),
            )
            for name in ("left", "right")
        ]
        for process in writers:
            process.start()
        for process in writers:
            process.join(timeout=60)
        assert not any(process.is_alive() for process in writers)
        assert drain(errors) == []
        with SketchStore(store_path) as store:
            assert [entry.name for entry in store.list()] == ["left", "right"]
            for name in ("left", "right"):
                assert [s.version for s in store.history(name)] == [1, 2, 3, 4]

    def test_wal_mode_is_actually_active(self, store_path):
        # belt and braces: the concurrency promise above rides on WAL
        with sqlite3.connect(store_path) as connection:
            mode = connection.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"
