"""Unit tests for the dense Gaussian sketch (BOMP's measurement step)."""

import numpy as np
import pytest

from repro.compressive.gaussian import GaussianSketch


class TestGaussianSketch:
    def test_matrix_shape_and_scaling(self):
        sketch = GaussianSketch(dimension=200, measurements=50, seed=1)
        assert sketch.matrix.shape == (50, 200)
        # entries are N(0, 1/t): column norms concentrate around 1
        norms = np.linalg.norm(sketch.matrix, axis=0)
        assert 0.5 < norms.mean() < 1.5

    def test_fit_equals_matrix_product(self, rng):
        sketch = GaussianSketch(100, 30, seed=2)
        x = rng.normal(size=100)
        sketch.fit(x)
        np.testing.assert_allclose(sketch.measurements_vector, sketch.matrix @ x)

    def test_streaming_updates_match_fit(self, rng):
        x = rng.poisson(3.0, size=80).astype(float)
        batch = GaussianSketch(80, 25, seed=3).fit(x)
        streamed = GaussianSketch(80, 25, seed=3)
        for index in np.flatnonzero(x):
            streamed.update(int(index), float(x[index]))
        np.testing.assert_allclose(
            batch.measurements_vector, streamed.measurements_vector, atol=1e-9
        )

    def test_merge_is_linear(self, rng):
        x = rng.normal(size=60)
        y = rng.normal(size=60)
        a = GaussianSketch(60, 20, seed=4).fit(x)
        b = GaussianSketch(60, 20, seed=4).fit(y)
        a.merge(b)
        direct = GaussianSketch(60, 20, seed=4).fit(x + y)
        np.testing.assert_allclose(
            a.measurements_vector, direct.measurements_vector, atol=1e-9
        )

    def test_merge_rejects_mismatched_seed(self, rng):
        x = rng.normal(size=60)
        a = GaussianSketch(60, 20, seed=1).fit(x)
        b = GaussianSketch(60, 20, seed=2).fit(x)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_dimension_validation(self):
        sketch = GaussianSketch(10, 5, seed=0)
        with pytest.raises(ValueError):
            sketch.fit(np.ones(11))
        with pytest.raises(IndexError):
            sketch.update(10, 1.0)

    def test_size_in_words_is_measurement_count(self):
        assert GaussianSketch(1_000, 64, seed=0).size_in_words() == 64
