"""Unit tests for OMP and the BOMP pipeline of the paper's related work."""

import numpy as np
import pytest

from repro.compressive.bomp import BOMPRecovery
from repro.compressive.omp import orthogonal_matching_pursuit


class TestOMP:
    def test_recovers_exactly_sparse_signal(self, rng):
        dictionary = rng.normal(size=(60, 200)) / np.sqrt(60)
        coefficients = np.zeros(200)
        support = [5, 77, 150]
        coefficients[support] = [3.0, -2.0, 5.0]
        measurements = dictionary @ coefficients
        result = orthogonal_matching_pursuit(dictionary, measurements, sparsity=3)
        assert sorted(result.support) == support
        np.testing.assert_allclose(result.coefficients, coefficients, atol=1e-8)
        assert result.residual_norm < 1e-8

    def test_stops_early_when_residual_vanishes(self, rng):
        dictionary = rng.normal(size=(40, 100))
        coefficients = np.zeros(100)
        coefficients[7] = 2.0
        measurements = dictionary @ coefficients
        result = orthogonal_matching_pursuit(dictionary, measurements, sparsity=10)
        assert result.iterations == 1

    def test_never_reselects_an_atom(self, rng):
        dictionary = rng.normal(size=(30, 50))
        measurements = rng.normal(size=30)
        result = orthogonal_matching_pursuit(dictionary, measurements, sparsity=20)
        assert len(result.support) == len(set(result.support))

    def test_sparsity_capped_at_dictionary_size(self, rng):
        dictionary = rng.normal(size=(20, 5))
        measurements = rng.normal(size=20)
        result = orthogonal_matching_pursuit(dictionary, measurements, sparsity=50)
        assert len(result.support) <= 5

    def test_input_validation(self, rng):
        with pytest.raises(ValueError):
            orthogonal_matching_pursuit(rng.normal(size=(10,)), rng.normal(size=10), 2)
        with pytest.raises(ValueError):
            orthogonal_matching_pursuit(
                rng.normal(size=(10, 5)), rng.normal(size=9), 2
            )
        with pytest.raises(ValueError):
            orthogonal_matching_pursuit(
                rng.normal(size=(10, 5)), rng.normal(size=10), 0
            )


class TestBOMP:
    def test_recovers_biased_sparse_vector(self, rng):
        """The setting BOMP is designed for: x = β·1 + k outliers."""
        n, k = 400, 4
        x = np.full(n, 55.0)
        outliers = rng.choice(n, size=k, replace=False)
        x[outliers] += rng.uniform(500.0, 1_000.0, size=k)
        bomp = BOMPRecovery(n, measurements=8 * k * 10, sparsity=k, seed=1).fit(x)
        result = bomp.recover()
        assert result.bias == pytest.approx(55.0, abs=1.0)
        assert set(result.outlier_indices) == set(outliers)
        np.testing.assert_allclose(result.recovered, x, atol=1.0)

    def test_streaming_updates_supported(self, rng):
        n = 200
        x = np.full(n, 10.0)
        x[13] += 300.0
        bomp = BOMPRecovery(n, measurements=80, sparsity=1, seed=2)
        for index, value in enumerate(x):
            bomp.update(index, float(value))
        result = bomp.recover()
        assert result.bias == pytest.approx(10.0, abs=0.5)
        assert list(result.outlier_indices) == [13]

    def test_struggles_when_deviations_are_dense(self, rng):
        """Outside the biased-k-sparse regime (dense Gaussian noise around the
        bias) BOMP's k+1 atoms cannot represent the vector: the recovery error
        stays comparable to the noise level — the limitation the paper notes."""
        n = 400
        x = rng.normal(100.0, 15.0, size=n)
        bomp = BOMPRecovery(n, measurements=120, sparsity=4, seed=3).fit(x)
        recovered = bomp.recover().recovered
        residual = np.abs(recovered - x)
        assert np.mean(residual) > 5.0  # cannot beat the per-coordinate noise

    def test_recovered_vector_helper(self, rng):
        n = 100
        x = np.full(n, 5.0)
        bomp = BOMPRecovery(n, measurements=60, sparsity=2, seed=4).fit(x)
        np.testing.assert_allclose(bomp.recovered_vector(), x, atol=0.5)
