"""Client error paths: connect refused, mid-shutdown, oversized frames.

The satellite contract: every transport or protocol failure surfaces as
one of the typed errors of :mod:`repro.server.errors` — never a raw
``OSError``/``struct.error`` — and a draining server answers a clean
``shutting-down`` rejection rather than hanging up silently.
"""

import asyncio
import socket

import pytest

from repro.server import (
    Client,
    ConnectionFailedError,
    FrameTooLargeError,
    RemoteOperationError,
    ServerConfig,
    ServerHandle,
)
from repro.api import SketchConfig
from repro.server.protocol import FRAME_PREAMBLE, PROTOCOL_VERSION, RESPONSE_MAGIC


def sketch_config():
    return SketchConfig("count_min", dimension=2_000, width=256, depth=5,
                        seed=11)


def _free_port():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestConnectRefused:
    def test_sync_client_raises_connection_failed(self):
        port = _free_port()  # nothing is listening here
        with pytest.raises(ConnectionFailedError, match="cannot connect"):
            Client("127.0.0.1", port, timeout=2.0)

    def test_async_client_raises_connection_failed(self):
        port = _free_port()

        async def scenario():
            from repro.server import AsyncClient

            with pytest.raises(ConnectionFailedError, match="cannot connect"):
                await AsyncClient.connect("127.0.0.1", port)

        asyncio.run(scenario())


class TestServerMidShutdown:
    def test_operations_rejected_with_shutting_down_code(self):
        handle = ServerHandle.start(ServerConfig(sketch=sketch_config()))
        client = Client(handle.host, handle.port)
        try:
            client.ingest([1])
            handle.begin_drain()
            # the connection may be closed under us (drain closes sockets)
            # or answer a clean shutting-down rejection while draining —
            # both are typed; what must never happen is a raw OSError
            deadline = 100
            saw_typed_refusal = False
            for _ in range(deadline):
                try:
                    client.ingest([2])
                except RemoteOperationError as error:
                    assert error.code == "shutting-down"
                    saw_typed_refusal = True
                    break
                except ConnectionFailedError:
                    saw_typed_refusal = True
                    break
            assert saw_typed_refusal
        finally:
            client.close()
            handle.stop()

    def test_connection_closed_by_drain_is_connection_failed(self):
        handle = ServerHandle.start(ServerConfig(sketch=sketch_config()))
        client = Client(handle.host, handle.port)
        try:
            client.ping()
            handle.stop()  # full drain: connections are closed
            with pytest.raises((ConnectionFailedError, RemoteOperationError)):
                client.ping()
        finally:
            client.close()


class TestOversizedFrames:
    def test_client_refuses_to_send_oversized_frame(self):
        handle = ServerHandle.start(ServerConfig(sketch=sketch_config()))
        try:
            with Client(handle.host, handle.port,
                        max_frame_bytes=1024) as client:
                with pytest.raises(FrameTooLargeError, match="maximum frame"):
                    client.ingest(list(range(1000)))
                # the connection survives: nothing was sent
                assert client.ping() == 0
        finally:
            handle.stop()

    def test_server_rejects_oversized_frame_with_clean_error(self):
        config = ServerConfig(sketch=sketch_config(), max_frame_bytes=4096)
        handle = ServerHandle.start(config)
        try:
            with Client(handle.host, handle.port) as client:
                with pytest.raises(FrameTooLargeError, match="maximum frame"):
                    client.ingest(list(range(10_000)))
        finally:
            handle.stop()

    def test_client_rejects_oversized_response_before_allocation(self):
        # a hostile/buggy "server" advertising a huge response frame
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        try:
            client = Client("127.0.0.1", port, max_frame_bytes=1 << 20)
            server_side, _ = listener.accept()
            try:
                import threading

                def answer_huge():
                    server_side.recv(1 << 16)
                    server_side.sendall(FRAME_PREAMBLE.pack(
                        RESPONSE_MAGIC, PROTOCOL_VERSION, 16, 1 << 30
                    ))

                thread = threading.Thread(target=answer_huge, daemon=True)
                thread.start()
                with pytest.raises(FrameTooLargeError):
                    client.ping()
                thread.join(timeout=5)
            finally:
                server_side.close()
                client.close()
        finally:
            listener.close()


class TestGarbageResponses:
    def test_bad_response_magic_is_protocol_error(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        try:
            client = Client("127.0.0.1", port)
            server_side, _ = listener.accept()
            try:
                import threading

                from repro.server import ProtocolError

                def answer_garbage():
                    server_side.recv(1 << 16)
                    server_side.sendall(b"HTTP/1.1 400 Bad Request\r\n\r\n")

                thread = threading.Thread(target=answer_garbage, daemon=True)
                thread.start()
                with pytest.raises(ProtocolError, match="magic"):
                    client.ping()
                thread.join(timeout=5)
            finally:
                server_side.close()
                client.close()
        finally:
            listener.close()

    def test_server_hanging_up_mid_response_is_connection_failed(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        try:
            client = Client("127.0.0.1", port)
            server_side, _ = listener.accept()
            try:
                import threading

                def hang_up_mid_frame():
                    server_side.recv(1 << 16)
                    server_side.sendall(FRAME_PREAMBLE.pack(
                        RESPONSE_MAGIC, PROTOCOL_VERSION, 100, 0
                    ))  # promises a 100-byte header, sends nothing
                    server_side.close()

                thread = threading.Thread(target=hang_up_mid_frame,
                                          daemon=True)
                thread.start()
                with pytest.raises(ConnectionFailedError, match="closed"):
                    client.ping()
                thread.join(timeout=5)
            finally:
                server_side.close()
                client.close()
        finally:
            listener.close()
