"""Frame protocol unit tests: round-trips, caps, and malformed frames."""

import struct

import numpy as np
import pytest

from repro.server.errors import FrameTooLargeError, ProtocolError
from repro.server.protocol import (
    FRAME_PREAMBLE,
    PROTOCOL_VERSION,
    REQUEST_MAGIC,
    RESPONSE_MAGIC,
    decode_preamble,
    encode_frame,
    pack_updates,
    pack_vector,
    parse_frame_header,
    unpack_updates,
    unpack_vector,
)


class TestFrameRoundTrip:
    def test_encode_then_decode_recovers_header_and_payload(self):
        header = {"op": "ingest", "count": 3}
        payload = b"\x01\x02\x03"
        frame = encode_frame(REQUEST_MAGIC, header, payload)
        header_len, payload_len = decode_preamble(
            frame[: FRAME_PREAMBLE.size], REQUEST_MAGIC
        )
        start = FRAME_PREAMBLE.size
        assert parse_frame_header(frame[start:start + header_len]) == header
        assert frame[start + header_len:] == payload
        assert payload_len == len(payload)

    def test_preamble_carries_protocol_version(self):
        frame = encode_frame(RESPONSE_MAGIC, {"ok": True})
        _, version, _, _ = FRAME_PREAMBLE.unpack_from(frame, 0)
        assert version == PROTOCOL_VERSION

    def test_header_encoding_is_deterministic(self):
        a = encode_frame(REQUEST_MAGIC, {"b": 1, "a": 2})
        b = encode_frame(REQUEST_MAGIC, {"a": 2, "b": 1})
        assert a == b


class TestFrameValidation:
    def test_wrong_magic_is_protocol_error(self):
        frame = encode_frame(REQUEST_MAGIC, {"op": "ping"})
        with pytest.raises(ProtocolError, match="magic"):
            decode_preamble(frame[: FRAME_PREAMBLE.size], RESPONSE_MAGIC)

    def test_unsupported_version_is_protocol_error(self):
        preamble = FRAME_PREAMBLE.pack(REQUEST_MAGIC, 99, 2, 0)
        with pytest.raises(ProtocolError, match="version"):
            decode_preamble(preamble, REQUEST_MAGIC)

    def test_oversized_frame_refused_on_encode(self):
        with pytest.raises(FrameTooLargeError, match="maximum frame size"):
            encode_frame(
                REQUEST_MAGIC, {"op": "ingest"}, b"x" * 100,
                max_frame_bytes=64,
            )

    def test_oversized_frame_refused_on_decode_before_allocation(self):
        preamble = FRAME_PREAMBLE.pack(REQUEST_MAGIC, PROTOCOL_VERSION,
                                       10, 1 << 30)
        with pytest.raises(FrameTooLargeError):
            decode_preamble(preamble, REQUEST_MAGIC, max_frame_bytes=1 << 20)

    def test_unparseable_header_is_protocol_error_not_struct_error(self):
        with pytest.raises(ProtocolError):
            try:
                parse_frame_header(b"\xff\xfe not json")
            except (struct.error, UnicodeDecodeError):  # pragma: no cover
                pytest.fail("raw decoding error leaked")

    def test_non_object_header_is_protocol_error(self):
        with pytest.raises(ProtocolError, match="object"):
            parse_frame_header(b"[1, 2]")


class TestUpdatePayloads:
    def test_round_trip_indices_and_deltas(self):
        indices = np.array([5, 0, 9], dtype=np.int64)
        deltas = np.array([1.5, -2.0, 3.0])
        payload, count = pack_updates(indices, deltas)
        assert count == 3
        out_indices, out_deltas = unpack_updates(payload, count)
        np.testing.assert_array_equal(out_indices, indices)
        np.testing.assert_array_equal(out_deltas, deltas)

    def test_unit_increments_when_deltas_omitted(self):
        payload, count = pack_updates([1, 2])
        _, deltas = unpack_updates(payload, count)
        np.testing.assert_array_equal(deltas, [1.0, 1.0])

    def test_scalar_delta_broadcasts(self):
        payload, count = pack_updates([1, 2, 3], 2.5)
        _, deltas = unpack_updates(payload, count)
        np.testing.assert_array_equal(deltas, [2.5, 2.5, 2.5])

    def test_mismatched_count_is_protocol_error(self):
        payload, count = pack_updates([1, 2, 3])
        with pytest.raises(ProtocolError, match="does not match"):
            unpack_updates(payload, count + 1)

    def test_shape_mismatch_is_protocol_error(self):
        with pytest.raises(ProtocolError, match="shape"):
            pack_updates([1, 2, 3], [1.0, 2.0])

    def test_vector_round_trip(self):
        vector = np.linspace(-1, 1, 17)
        payload, length = pack_vector(vector)
        np.testing.assert_array_equal(unpack_vector(payload, length), vector)

    def test_truncated_vector_is_protocol_error(self):
        payload, length = pack_vector(np.ones(4))
        with pytest.raises(ProtocolError):
            unpack_vector(payload[:-3], length)
