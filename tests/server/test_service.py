"""End-to-end service tests: writer/reader split, staleness, drain, store.

Each test boots a real server on an ephemeral port via
:class:`ServerHandle` (event loop on a daemon thread) and talks to it with
the synchronous :class:`Client` — the same way the benchmark and the CI
smoke workload do.
"""

import asyncio

import numpy as np
import pytest

from repro.api import SketchConfig, SketchSession
from repro.api.errors import ConfigError
from repro.server import (
    AsyncClient,
    Client,
    RemoteOperationError,
    ServerConfig,
    ServerHandle,
)

DIMENSION = 2_000
SEED = 11


def sketch_config(**overrides):
    fields = dict(dimension=DIMENSION, width=256, depth=5, seed=SEED)
    fields.update(overrides)
    algorithm = fields.pop("algorithm", "count_min")
    return SketchConfig(algorithm, **fields)


@pytest.fixture
def handle():
    handle = ServerHandle.start(
        ServerConfig(sketch=sketch_config(), snapshot_interval=0.05)
    )
    yield handle
    handle.stop()


@pytest.fixture
def client(handle):
    with Client(handle.host, handle.port) as client:
        yield client


class TestIngestAndQuery:
    def test_ingested_updates_are_visible_after_flush(self, client):
        client.ingest([3, 5, 3], [1.0, 2.0, 1.0])
        epoch = client.flush()
        assert epoch >= 1
        answer = client.point(3)
        assert answer.value == 2.0
        assert answer.epoch == epoch

    def test_epoch_zero_before_any_ingest(self, client):
        assert client.ping() == 0
        assert client.point(3).epoch == 0

    def test_queries_match_single_process_reference(self, client):
        rng = np.random.default_rng(0)
        indices = rng.integers(0, DIMENSION, 5_000)
        client.ingest(indices)
        client.flush()
        reference = SketchSession.from_config(sketch_config())
        reference.ingest(indices)
        for probe in (0, 7, 423, DIMENSION - 1):
            assert client.point(probe).value == pytest.approx(
                reference.query(kind="point", index=probe)
            )
        assert client.range(10, 200).value == pytest.approx(
            reference.query(kind="range", low=10, high=200)
        )

    def test_heavy_hitters_round_trip(self, client):
        client.ingest([7] * 50 + [9] * 30 + list(range(20)))
        client.flush()
        hitters = client.heavy_hitters(threshold=25.0).value
        assert [h.index for h in hitters[:2]] == [7, 9]
        assert hitters[0].estimate >= 50.0

    def test_inner_product_round_trip(self, client):
        client.ingest([1, 2, 3], [2.0, 3.0, 4.0])
        client.flush()
        vector = np.zeros(DIMENSION)
        vector[2] = 10.0
        assert client.inner_product(vector).value == pytest.approx(30.0)

    def test_vectorized_point_query(self, client):
        client.ingest([4, 4, 6])
        client.flush()
        answer = client.query("point", index=[4, 6, 8])
        assert answer.value == [2.0, 1.0, 0.0]

    def test_out_of_range_key_is_rejected_with_config_code(self, client):
        with pytest.raises(RemoteOperationError) as excinfo:
            client.ingest([DIMENSION + 5])
        assert excinfo.value.code == "config"
        # the rejected batch never reached the writer
        client.flush()
        assert client.stats()["updates_applied"] == 0


class TestStalenessContract:
    def test_snapshot_is_bit_identical_to_reported_epoch(self, client):
        client.ingest(np.arange(500) % DIMENSION)
        client.flush()
        epoch, payload = client.snapshot()
        answer = client.point(17)
        assert answer.epoch == epoch
        restored = SketchSession.from_bytes(payload)
        assert restored.query(kind="point", index=17) == answer.value

    def test_replica_refreshes_on_cadence_without_flush(self, handle, client):
        client.ingest([1, 1, 1])
        deadline = 50
        for _ in range(deadline):
            if client.point(1).epoch >= 1:
                break
            import time
            time.sleep(0.05)
        answer = client.point(1)
        assert answer.epoch >= 1
        assert answer.value == 3.0

    def test_flush_with_no_pending_updates_keeps_epoch(self, client):
        client.ingest([2])
        first = client.flush()
        second = client.flush()
        assert second == first


class TestStats:
    def test_stats_reports_per_connection_byte_counts(self, handle):
        with Client(handle.host, handle.port) as ingester:
            ingester.ingest(np.arange(100), np.ones(100))
            ingester.flush()
            with Client(handle.host, handle.port) as querier:
                querier.point(1)
                querier.point(2)
                stats = querier.stats()
        connections = stats["connections"]
        assert len(connections) == 2
        summaries = sorted(
            connections.values(), key=lambda s: -s["ingest_updates"]
        )
        assert summaries[0]["ingest_updates"] == 100
        assert summaries[0]["ingest_bytes"] > 100 * 16  # payload + response
        assert summaries[1]["queries"] == 2
        assert summaries[1]["query_bytes"] > 0
        totals = stats["totals"]
        assert totals["ingest_updates"] == 100
        assert totals["queries"] == 2

    def test_closed_connections_fold_into_lifetime_totals(self, handle):
        with Client(handle.host, handle.port) as first:
            first.ingest([1, 2, 3])
            first.flush()
        with Client(handle.host, handle.port) as second:
            totals = second.stats()["totals"]
        assert totals["ingest_updates"] == 3


class TestDrain:
    def test_drain_applies_queued_batches_before_stopping(self):
        handle = ServerHandle.start(
            ServerConfig(sketch=sketch_config(), snapshot_interval=5.0)
        )
        with Client(handle.host, handle.port) as client:
            for _ in range(10):
                client.ingest(np.arange(50))
        summary = handle.stop()
        assert summary["updates_accepted"] == 500
        assert summary["updates_applied"] == 500
        assert summary["final_epoch"] >= 1

    def test_store_boot_and_checkpoint_round_trip(self, tmp_path):
        uri = f"store://{tmp_path / 'serve.db'}#live"
        config = ServerConfig(sketch=sketch_config(), store=uri,
                              snapshot_interval=0.05)
        handle = ServerHandle.start(config)
        assert handle.server.restored_from_store is False
        with Client(handle.host, handle.port) as client:
            client.ingest([5] * 7)
            client.flush()
            expected = client.point(5).value
        summary = handle.stop()
        assert summary["checkpoint"] == f"{uri}@1"

        second = ServerHandle.start(config)
        try:
            assert second.server.restored_from_store is True
            with Client(second.host, second.port) as client:
                assert client.point(5).value == expected
        finally:
            second.stop()

    def test_store_only_boot_requires_existing_entry(self, tmp_path):
        uri = f"store://{tmp_path / 'missing.db'}#nothing"
        with pytest.raises(ConfigError, match="no existing"):
            ServerHandle.start(ServerConfig(store=uri))


class TestServerConfigValidation:
    def test_needs_sketch_or_store(self):
        with pytest.raises(ConfigError, match="sketch"):
            ServerConfig()

    def test_rejects_non_store_uri(self):
        with pytest.raises(ConfigError, match="store://"):
            ServerConfig(sketch=sketch_config(), store="/plain/path")

    def test_rejects_bad_port(self):
        with pytest.raises(ConfigError, match="port"):
            ServerConfig(sketch=sketch_config(), port=99_999)

    def test_rejects_nonlinear_sketch_with_shards(self):
        with pytest.raises(ConfigError, match="not linear"):
            ServerConfig(sketch=sketch_config(algorithm="count_min_cu"),
                         shards=2)

    def test_from_mapping_rejects_unknown_keys(self):
        with pytest.raises(ConfigError, match="unknown server config key"):
            ServerConfig.from_mapping({"algorithm": "count_min",
                                       "dimension": 100, "typo": 1})

    def test_from_mapping_builds_sketch_from_json_keys(self):
        config = ServerConfig.from_mapping({
            "algorithm": "count_min", "dimension": 100, "width": 32,
            "depth": 3, "seed": 4, "port": 1234,
        })
        assert config.sketch.name == "count_min"
        assert config.port == 1234

    def test_unseeded_sketch_is_rejected_at_boot(self):
        config = ServerConfig(
            sketch=SketchConfig("count_min", dimension=100, width=32,
                                depth=3, seed=None)
        )
        with pytest.raises(ConfigError, match="seed"):
            ServerHandle.start(config)


class TestAsyncClient:
    def test_async_client_full_surface(self, handle):
        async def scenario():
            async with await AsyncClient.connect(
                handle.host, handle.port
            ) as client:
                assert await client.ping() == 0
                await client.ingest([1, 1, 2], [1.0, 1.0, 5.0])
                epoch = await client.flush()
                answer = await client.point(1)
                assert answer.value == 2.0
                assert answer.epoch == epoch
                hitters = (await client.heavy_hitters(threshold=4.0)).value
                assert hitters[0].index == 2
                stats = await client.stats()
                assert stats["totals"]["ingest_updates"] == 3

        asyncio.run(scenario())


class TestShardedServing:
    def test_server_with_shards_matches_reference_and_releases_memory(self):
        config = ServerConfig(sketch=sketch_config(), shards=2,
                              snapshot_interval=0.05)
        handle = ServerHandle.start(config)
        rng = np.random.default_rng(5)
        indices = rng.integers(0, DIMENSION, 10_000)
        with Client(handle.host, handle.port) as client:
            client.ingest(indices)
            client.flush()
            observed = client.point(int(indices[0])).value
        session = handle.server._session
        pool = session._pool
        names = pool.segment_names() if pool is not None else []
        handle.stop()
        reference = SketchSession.from_config(sketch_config())
        reference.ingest(indices)
        assert observed == reference.query(kind="point", index=int(indices[0]))
        if names:
            from multiprocessing import shared_memory

            for name in names:
                with pytest.raises(FileNotFoundError):
                    segment = shared_memory.SharedMemory(name=name)
                    segment.close()  # pragma: no cover - only on leak
