"""Unit tests for the CS-matrix Ψ(h, r) (Definition 2)."""

import numpy as np
import pytest

from repro.matrices.cs import CSMatrix


@pytest.fixture
def cs() -> CSMatrix:
    return CSMatrix(buckets=8, dimension=60, seed=4)


class TestStructure:
    def test_dense_entries_are_signs(self, cs):
        dense = cs.to_dense()
        assert set(np.unique(dense)) <= {-1.0, 0.0, 1.0}
        # exactly one non-zero per column
        np.testing.assert_array_equal(np.count_nonzero(dense, axis=0), np.ones(60))

    def test_bucket_and_sign_match_dense(self, cs):
        dense = cs.to_dense()
        for j in range(60):
            assert dense[cs.bucket(j), j] == cs.sign(j)

    def test_column_sums_are_signed(self, cs):
        np.testing.assert_array_equal(cs.column_sums(), cs.to_dense().sum(axis=1))

    def test_out_of_range_accessors(self, cs):
        with pytest.raises(IndexError):
            cs.bucket(60)
        with pytest.raises(IndexError):
            cs.sign(-1)


class TestApply:
    def test_apply_matches_dense_product(self, cs, rng):
        x = rng.normal(size=60)
        np.testing.assert_allclose(cs.apply(x), cs.to_dense() @ x)

    def test_linearity(self, cs, rng):
        x = rng.normal(size=60)
        y = rng.normal(size=60)
        np.testing.assert_allclose(cs.apply(x - y), cs.apply(x) - cs.apply(y))

    def test_reproducible_with_seed(self, rng):
        x = rng.normal(size=30)
        a = CSMatrix(buckets=4, dimension=30, seed=77)
        b = CSMatrix(buckets=4, dimension=30, seed=77)
        np.testing.assert_allclose(a.apply(x), b.apply(x))

    def test_wrong_dimension_rejected(self, cs):
        with pytest.raises(ValueError):
            cs.apply(np.ones(61))
