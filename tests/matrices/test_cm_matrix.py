"""Unit tests for the CM-matrix Π(h) (Definition 1)."""

import numpy as np
import pytest

from repro.matrices.cm import CMMatrix


@pytest.fixture
def cm() -> CMMatrix:
    return CMMatrix(buckets=8, dimension=50, seed=3)


class TestStructure:
    def test_shape(self, cm):
        assert cm.shape == (8, 50)

    def test_dense_has_one_entry_per_column(self, cm):
        dense = cm.to_dense()
        np.testing.assert_array_equal(dense.sum(axis=0), np.ones(50))
        assert set(np.unique(dense)) <= {0.0, 1.0}

    def test_bucket_matches_dense(self, cm):
        dense = cm.to_dense()
        for j in range(50):
            assert dense[cm.bucket(j), j] == 1.0

    def test_bucket_out_of_range(self, cm):
        with pytest.raises(IndexError):
            cm.bucket(50)

    def test_column_sums_match_dense(self, cm):
        np.testing.assert_array_equal(cm.column_sums(), cm.to_dense().sum(axis=1))

    def test_mismatched_hash_function_rejected(self):
        from repro.hashing.families import PairwiseHash

        with pytest.raises(ValueError, match="range_size"):
            CMMatrix(buckets=8, dimension=10, hash_function=PairwiseHash(9, seed=0))


class TestApply:
    def test_apply_matches_dense_product(self, cm, rng):
        x = rng.normal(size=50)
        np.testing.assert_allclose(cm.apply(x), cm.to_dense() @ x)

    def test_matmul_operator(self, cm, rng):
        x = rng.normal(size=50)
        np.testing.assert_allclose(cm @ x, cm.apply(x))

    def test_linearity(self, cm, rng):
        x = rng.normal(size=50)
        y = rng.normal(size=50)
        np.testing.assert_allclose(cm.apply(x + y), cm.apply(x) + cm.apply(y))
        np.testing.assert_allclose(cm.apply(2.5 * x), 2.5 * cm.apply(x))

    def test_wrong_dimension_rejected(self, cm):
        with pytest.raises(ValueError, match="dimension"):
            cm.apply(np.ones(49))

    def test_all_ones_vector_gives_column_sums(self, cm):
        np.testing.assert_allclose(cm.apply(np.ones(50)), cm.column_sums())
