"""Unit tests for the sampling matrix Υ (Definition 3)."""

import numpy as np
import pytest

from repro.matrices.sampling import SamplingMatrix


class TestStructure:
    def test_dense_has_one_entry_per_row(self):
        m = SamplingMatrix(samples=12, dimension=40, seed=1)
        dense = m.to_dense()
        np.testing.assert_array_equal(dense.sum(axis=1), np.ones(12))

    def test_apply_picks_sampled_coordinates(self):
        m = SamplingMatrix(samples=6, dimension=20, seed=2)
        x = np.arange(20, dtype=float)
        np.testing.assert_array_equal(m.apply(x), x[m.sampled_indices])

    def test_apply_matches_dense(self, rng):
        m = SamplingMatrix(samples=9, dimension=25, seed=3)
        x = rng.normal(size=25)
        np.testing.assert_allclose(m.apply(x), m.to_dense() @ x)

    def test_column_sums_count_sample_multiplicity(self):
        m = SamplingMatrix(samples=50, dimension=10, seed=4)
        sums = m.column_sums()
        assert sums.sum() == 50
        np.testing.assert_array_equal(
            sums, np.bincount(m.sampled_indices, minlength=10)
        )

    def test_linearity(self, rng):
        m = SamplingMatrix(samples=7, dimension=30, seed=5)
        x = rng.normal(size=30)
        y = rng.normal(size=30)
        np.testing.assert_allclose(m.apply(x + y), m.apply(x) + m.apply(y))


class TestThetaLogN:
    def test_sample_count_scales_with_log_n(self):
        small = SamplingMatrix.theta_log_n(100, seed=0)
        large = SamplingMatrix.theta_log_n(1_000_000, seed=0)
        assert small.rows < large.rows
        assert large.rows == int(np.ceil(20.0 * np.log(1_000_000)))

    def test_constant_is_tunable(self):
        default = SamplingMatrix.theta_log_n(10_000, seed=0)
        doubled = SamplingMatrix.theta_log_n(10_000, constant=40.0, seed=0)
        assert doubled.rows == int(np.ceil(40.0 * np.log(10_000)))
        assert doubled.rows == pytest.approx(2 * default.rows, abs=1)

    def test_rejects_non_positive_constant(self):
        with pytest.raises(ValueError):
            SamplingMatrix.theta_log_n(100, constant=0.0)
