"""Unit tests for vertical stacking of sketching operators."""

import numpy as np
import pytest

from repro.matrices.cm import CMMatrix
from repro.matrices.cs import CSMatrix
from repro.matrices.sampling import SamplingMatrix
from repro.matrices.stacked import StackedOperator


@pytest.fixture
def stack() -> StackedOperator:
    """The implicit Φ of ℓ2-S/R: one CM block plus several CS blocks."""
    dimension = 40
    blocks = [CMMatrix(8, dimension, seed=1)] + [
        CSMatrix(8, dimension, seed=10 + i) for i in range(3)
    ]
    return StackedOperator(blocks)


class TestStackedOperator:
    def test_total_rows(self, stack):
        assert stack.rows == 8 * 4
        assert stack.columns == 40

    def test_apply_matches_dense(self, stack, rng):
        x = rng.normal(size=40)
        np.testing.assert_allclose(stack.apply(x), stack.to_dense() @ x)

    def test_linearity_of_the_full_sketching_matrix(self, stack, rng):
        x = rng.normal(size=40)
        y = rng.normal(size=40)
        np.testing.assert_allclose(
            stack.apply(x + y), stack.apply(x) + stack.apply(y)
        )

    def test_split_inverts_concatenation(self, stack, rng):
        x = rng.normal(size=40)
        pieces = stack.split(stack.apply(x))
        assert len(pieces) == 4
        for piece, block in zip(pieces, stack.operators):
            np.testing.assert_allclose(piece, block.apply(x))

    def test_split_rejects_wrong_length(self, stack):
        with pytest.raises(ValueError):
            stack.split(np.zeros(stack.rows + 1))

    def test_column_sums_equal_apply_to_ones(self, stack):
        np.testing.assert_allclose(
            stack.column_sums(), stack.apply(np.ones(40))
        )

    def test_mixed_dimensions_rejected(self):
        with pytest.raises(ValueError, match="column count"):
            StackedOperator([CMMatrix(4, 10, seed=0), CMMatrix(4, 11, seed=0)])

    def test_empty_stack_rejected(self):
        with pytest.raises(ValueError):
            StackedOperator([])

    def test_l1_stack_includes_sampling_block(self, rng):
        """The implicit Φ of ℓ1-S/R: CM blocks plus a sampling block."""
        dimension = 30
        stack = StackedOperator(
            [CMMatrix(6, dimension, seed=i) for i in range(3)]
            + [SamplingMatrix(10, dimension, seed=99)]
        )
        x = rng.normal(size=dimension)
        assert stack.apply(x).shape == (6 * 3 + 10,)
