"""Unit tests for the dyadic range sketch."""

import numpy as np
import pytest

from repro.queries.dyadic import DyadicRangeSketch
from repro.queries.range_query import range_sum
from repro.sketches.registry import make_sketch


@pytest.fixture
def biased_counts(rng):
    return np.maximum(rng.normal(50.0, 8.0, size=3_000), 0.0)


class TestDyadicDecomposition:
    def test_decomposition_covers_the_range_exactly(self):
        structure = DyadicRangeSketch(1_024, 64, 3, seed=1)
        for low, high in [(0, 1_024), (1, 1_023), (100, 101), (37, 911), (0, 0)]:
            covered = []
            for level, start, end in structure._decompose(low, high):
                for block in range(start, end):
                    block_low = block << level
                    block_high = (block + 1) << level
                    covered.extend(range(block_low, block_high))
            assert sorted(covered) == list(range(low, high))

    def test_logarithmic_number_of_point_queries(self):
        structure = DyadicRangeSketch(4_096, 64, 3, seed=2)
        worst = max(
            structure.queries_per_range(low, high)
            for low, high in [(1, 4_095), (3, 4_001), (123, 3_987)]
        )
        # at most 2 blocks per level
        assert worst <= 2 * structure.levels

    def test_invalid_ranges_rejected(self):
        structure = DyadicRangeSketch(100, 16, 3, seed=3)
        with pytest.raises(ValueError):
            structure.range_sum(10, 5)
        with pytest.raises(ValueError):
            structure.range_sum(0, 101)
        with pytest.raises(IndexError):
            structure.point_query(100)


class TestDyadicAccuracy:
    def test_range_sums_close_to_truth(self, biased_counts):
        structure = DyadicRangeSketch(
            biased_counts.size, 256, 5, algorithm="l2_sr", seed=4
        ).fit(biased_counts)
        for low, high in [(0, 3_000), (100, 2_000), (512, 600), (2_900, 3_000)]:
            truth = float(biased_counts[low:high].sum())
            estimate = structure.range_sum(low, high)
            assert estimate == pytest.approx(truth, rel=0.1, abs=200.0)

    def test_more_accurate_than_summing_point_estimates_on_long_ranges(
        self, biased_counts
    ):
        """The reason the structure exists: O(log n) vs O(range) error growth."""
        flat = make_sketch("count_sketch", biased_counts.size, 256, 5, seed=5)
        flat.fit(biased_counts)
        dyadic = DyadicRangeSketch(
            biased_counts.size, 256, 5, algorithm="count_sketch", seed=5
        ).fit(biased_counts)
        low, high = 0, 2_500
        truth = float(biased_counts[low:high].sum())
        flat_error = abs(range_sum(flat, low, high) - truth)
        dyadic_error = abs(dyadic.range_sum(low, high) - truth)
        assert dyadic_error < flat_error

    def test_point_query_uses_base_level(self, biased_counts):
        structure = DyadicRangeSketch(
            biased_counts.size, 256, 5, algorithm="l2_sr", seed=6
        ).fit(biased_counts)
        index = 123
        assert structure.point_query(index) == pytest.approx(
            biased_counts[index], abs=25.0
        )

    def test_streaming_updates_match_fit(self, rng):
        counts = rng.poisson(5.0, size=500).astype(float)
        batch = DyadicRangeSketch(500, 64, 3, algorithm="count_median",
                                  seed=7).fit(counts)
        streamed = DyadicRangeSketch(500, 64, 3, algorithm="count_median", seed=7)
        for index in np.flatnonzero(counts):
            streamed.update(int(index), float(counts[index]))
        for low, high in [(0, 500), (10, 300)]:
            assert streamed.range_sum(low, high) == pytest.approx(
                batch.range_sum(low, high)
            )

    def test_size_accounts_for_every_level(self):
        structure = DyadicRangeSketch(1_000, 64, 3, seed=8)
        assert structure.size_in_words() > 64 * 3  # more than a single level
