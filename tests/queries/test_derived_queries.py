"""Unit tests for range-sum, inner-product and quantile queries."""

import numpy as np
import pytest

from repro.core import L2BiasAwareSketch
from repro.queries.inner_product import inner_product_estimate
from repro.queries.quantiles import approximate_quantile
from repro.queries.range_query import range_sum
from repro.sketches import CountMin


@pytest.fixture
def fitted(rng):
    vector = rng.normal(200.0, 10.0, size=2_000)
    sketch = L2BiasAwareSketch(2_000, 128, 5, seed=1).fit(vector)
    return sketch, vector


class TestRangeSum:
    def test_matches_true_range_sum(self, fitted):
        sketch, vector = fitted
        low, high = 100, 160
        estimate = range_sum(sketch, low, high)
        assert estimate == pytest.approx(vector[low:high].sum(), rel=0.05)

    def test_full_range_allowed(self, fitted):
        sketch, vector = fitted
        estimate = range_sum(sketch, 0, sketch.dimension)
        assert estimate == pytest.approx(vector.sum(), rel=0.05)

    def test_empty_range_is_zero(self, fitted):
        sketch, _ = fitted
        assert range_sum(sketch, 10, 10) == 0.0

    def test_invalid_bounds(self, fitted):
        sketch, _ = fitted
        with pytest.raises(ValueError):
            range_sum(sketch, 50, 10)
        with pytest.raises(IndexError):
            range_sum(sketch, -1, 10)


class TestInnerProduct:
    def test_matches_true_inner_product(self, fitted, rng):
        sketch, vector = fitted
        y = rng.normal(size=2_000)
        estimate = inner_product_estimate(sketch, y)
        truth = float(np.dot(vector, y))
        assert estimate == pytest.approx(truth, rel=0.2, abs=2_000.0)

    def test_dimension_mismatch_rejected(self, fitted):
        sketch, _ = fitted
        with pytest.raises(ValueError):
            inner_product_estimate(sketch, np.ones(1_999))

    def test_indicator_vector_reduces_to_range_sum(self, fitted):
        sketch, _ = fitted
        indicator = np.zeros(2_000)
        indicator[5:25] = 1.0
        assert inner_product_estimate(sketch, indicator) == pytest.approx(
            range_sum(sketch, 5, 25), rel=1e-9
        )


class TestQuantiles:
    def test_median_of_biased_vector_is_near_the_bias(self, fitted):
        sketch, vector = fitted
        assert approximate_quantile(sketch, 0.5) == pytest.approx(
            np.median(vector), abs=10.0
        )

    def test_extreme_quantiles(self, fitted):
        sketch, vector = fitted
        assert approximate_quantile(sketch, 0.0) <= approximate_quantile(sketch, 1.0)

    def test_invalid_q(self, fitted):
        sketch, _ = fitted
        with pytest.raises(ValueError):
            approximate_quantile(sketch, 1.5)

    def test_works_on_count_min(self, small_count_vector):
        sketch = CountMin(small_count_vector.size, 64, 5, seed=2)
        sketch.fit(small_count_vector)
        estimate = approximate_quantile(sketch, 0.5)
        assert estimate >= np.median(small_count_vector) - 1e-9
