"""Unit tests for heavy-hitter queries."""

import numpy as np
import pytest

from repro.core import L2BiasAwareSketch
from repro.queries.heavy_hitters import heavy_hitters
from repro.sketches import CountSketch


@pytest.fixture
def outlier_vector(rng):
    """A biased vector whose interesting items are the ones far above the bias."""
    vector = rng.normal(100.0, 5.0, size=4_000)
    hot = rng.choice(4_000, size=15, replace=False)
    vector[hot] += 5_000.0
    return vector, set(int(i) for i in hot)


class TestHeavyHitters:
    def test_absolute_threshold_finds_planted_outliers(self, outlier_vector):
        vector, hot = outlier_vector
        sketch = L2BiasAwareSketch(4_000, 256, 7, seed=1).fit(vector)
        found = heavy_hitters(sketch, threshold=2_000.0)
        assert {h.index for h in found} == hot

    def test_relative_to_bias_mode(self, outlier_vector):
        """Thresholding the de-biased score isolates outliers above the bias."""
        vector, hot = outlier_vector
        sketch = L2BiasAwareSketch(4_000, 256, 7, seed=2).fit(vector)
        found = heavy_hitters(sketch, threshold=1_000.0, relative_to_bias=True)
        assert {h.index for h in found} == hot
        # without de-biasing, an absolute threshold of 1000 would flag everything
        plain = heavy_hitters(sketch, threshold=1_000.0)
        assert len(plain) < 100  # estimates near the bias (100) stay below 1000

    def test_phi_threshold(self, rng):
        vector = np.zeros(1_000)
        vector[7] = 900.0
        vector[13] = 60.0
        sketch = CountSketch(1_000, 128, 5, seed=3).fit(vector)
        found = heavy_hitters(sketch, phi=0.5, total_mass=float(vector.sum()))
        assert [h.index for h in found] == [7]

    def test_top_k_truncation_and_sorting(self, outlier_vector):
        vector, hot = outlier_vector
        sketch = L2BiasAwareSketch(4_000, 256, 7, seed=4).fit(vector)
        found = heavy_hitters(sketch, threshold=2_000.0, top_k=5)
        assert len(found) == 5
        scores = [h.score for h in found]
        assert scores == sorted(scores, reverse=True)

    def test_phi_with_candidates_keeps_domain_relative_meaning(self):
        """On a bounded sketch, candidates restrict which keys are reported
        but phi stays relative to the whole domain's mass."""
        vector = np.zeros(1_000)
        vector[7] = 900.0
        vector[13] = 60.0
        sketch = CountSketch(1_000, 128, 5, seed=3).fit(vector)
        full = heavy_hitters(sketch, phi=0.5)
        restricted = heavy_hitters(sketch, phi=0.5,
                                   candidates=[7, 13, 500])
        assert [h.index for h in restricted] == [h.index for h in full] == [7]

    def test_argument_validation(self, outlier_vector):
        vector, _ = outlier_vector
        sketch = CountSketch(4_000, 64, 3, seed=5).fit(vector)
        with pytest.raises(ValueError, match="exactly one"):
            heavy_hitters(sketch)
        with pytest.raises(ValueError, match="exactly one"):
            heavy_hitters(sketch, threshold=1.0, phi=0.1)
        with pytest.raises(ValueError):
            heavy_hitters(sketch, phi=1.5)
        with pytest.raises(ValueError):
            heavy_hitters(sketch, threshold=1.0, top_k=0)
