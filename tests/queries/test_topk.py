"""Unit tests for the streaming top-k tracker."""

import pytest

from repro.core import StreamingL2BiasAwareSketch
from repro.queries.topk import StreamingTopK
from repro.sketches import CountSketch


class TestStreamingTopK:
    def test_finds_planted_heavy_items(self, rng):
        sketch = CountSketch(2_000, 256, 5, seed=1)
        tracker = StreamingTopK(sketch, k=3)
        heavy = [11, 222, 1_999]
        for _ in range(3_000):
            tracker.update(int(rng.integers(0, 2_000)), 1.0)
        for item in heavy:
            for _ in range(500):
                tracker.update(item, 1.0)
        assert set(tracker.top_indices()) == set(heavy)

    def test_scores_sorted_descending(self, rng):
        sketch = CountSketch(500, 128, 5, seed=2)
        tracker = StreamingTopK(sketch, k=5)
        for item, count in [(1, 100), (2, 80), (3, 60), (4, 40), (5, 20)]:
            for _ in range(count):
                tracker.update(item, 1.0)
        entries = tracker.top()
        scores = [entry.score for entry in entries]
        assert scores == sorted(scores, reverse=True)
        assert entries[0].index == 1

    def test_capacity_bounds_memory(self, rng):
        sketch = CountSketch(5_000, 64, 3, seed=3)
        tracker = StreamingTopK(sketch, k=2, capacity=10)
        for item in rng.integers(0, 5_000, size=2_000):
            tracker.update(int(item), 1.0)
        assert tracker.candidate_count <= 10

    def test_relative_to_bias_mode_finds_outliers_not_large_counts(self, rng):
        """On a biased stream, score relative to the bias isolates outliers."""
        dimension = 1_000
        sketch = StreamingL2BiasAwareSketch(dimension, 256, 5, seed=4)
        tracker = StreamingTopK(sketch, k=2, relative_to_bias=True)
        # every item gets a common background of ~50; two items get much more
        background = rng.poisson(50.0, size=dimension)
        for index, count in enumerate(background):
            if count > 0:
                tracker.update(index, float(count))
        tracker.update(123, 5_000.0)
        tracker.update(789, 4_000.0)
        assert set(tracker.top_indices()) == {123, 789}

    def test_parameter_validation(self):
        sketch = CountSketch(100, 16, 3, seed=5)
        with pytest.raises(ValueError):
            StreamingTopK(sketch, k=0)
        with pytest.raises(ValueError):
            StreamingTopK(sketch, k=5, capacity=3)
