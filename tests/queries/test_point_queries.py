"""Unit tests for point queries."""

import numpy as np
import pytest

from repro.core import L2BiasAwareSketch
from repro.queries.point import batch_point_query, point_query


@pytest.fixture
def fitted_sketch(biased_gaussian_vector):
    sketch = L2BiasAwareSketch(biased_gaussian_vector.size, 128, 5, seed=1)
    return sketch.fit(biased_gaussian_vector), biased_gaussian_vector


class TestPointQuery:
    def test_estimate_matches_sketch_query(self, fitted_sketch):
        sketch, vector = fitted_sketch
        result = point_query(sketch, 42)
        assert result.estimate == pytest.approx(sketch.query(42))
        assert result.truth is None
        assert result.absolute_error is None

    def test_truth_attached_when_provided(self, fitted_sketch):
        sketch, vector = fitted_sketch
        result = point_query(sketch, 42, truth=vector)
        assert result.truth == pytest.approx(vector[42])
        assert result.absolute_error == pytest.approx(
            abs(result.estimate - vector[42])
        )

    def test_batch_query_length_and_order(self, fitted_sketch):
        sketch, vector = fitted_sketch
        results = batch_point_query(sketch, [3, 1, 4], truth=vector)
        assert [r.index for r in results] == [3, 1, 4]
        assert all(r.absolute_error is not None for r in results)

    def test_errors_are_small_on_biased_data(self, fitted_sketch):
        sketch, vector = fitted_sketch
        results = batch_point_query(sketch, range(0, 5_000, 250), truth=vector)
        errors = [r.absolute_error for r in results]
        # the per-coordinate noise of a width-128 ℓ2-S/R on this workload is
        # of the order Err_2(debiased)/√width ≈ 95; the median error sits well
        # below the outlier magnitude (10 000) and the bias (100 · n/s ≈ 3900
        # for Count-Median without de-biasing)
        assert np.median(errors) < 150.0
