"""Setup shim.

The project metadata lives in ``pyproject.toml`` (PEP 621); this file exists
so that the package can be installed editable (``pip install -e .``) on
machines whose setuptools/pip are too old for PEP 660 editable wheels (e.g.
offline environments without the ``wheel`` package).
"""

from setuptools import setup

setup()
