"""Setup shim.

The project metadata lives in ``pyproject.toml``; this file exists so that the
package can be installed editable (``pip install -e .``) on machines whose
setuptools/pip are too old for PEP 660 editable wheels (e.g. offline
environments without the ``wheel`` package).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Bias-Aware Sketches (Chen & Zhang, VLDB 2017): bias-aware linear "
        "sketches for point queries over streaming and distributed frequency "
        "vectors"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
    entry_points={
        "console_scripts": ["repro-sketches = repro.cli:main"],
    },
)
